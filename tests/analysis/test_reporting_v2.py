"""v2 reporting surface: SARIF, baseline workflow, --changed, parse cache,
waiver grammar regression, byte-identical determinism."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import lint_paths
from repro.analysis.baseline import (
    BASELINE_SCHEMA_VERSION,
    apply_baseline,
    load_baseline,
    stale_entries,
    write_baseline,
)
from repro.analysis.engine import ModuleSource, _parse_waivers
from repro.analysis.reporting import sarif_report

FIXTURES = Path(__file__).parent / "fixtures"
REPO = Path(__file__).resolve().parents[2]


def _cli(*args, cwd=REPO, cache_dir=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    if cache_dir is not None:
        env["REPRO_LINT_CACHE_DIR"] = str(cache_dir)
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
    )


class TestWaiverGrammar:
    """Regression: reasons containing parens must survive intact."""

    def test_parenthesised_reason_not_truncated(self):
        waivers = _parse_waivers(
            "x = 1  # repro-lint: disable=R001 "
            "(1/rps is seconds (SI), so the product is unitless)\n"
        )
        (waiver,) = waivers.values()
        assert waiver.reason == "1/rps is seconds (SI), so the product is unitless"
        assert waiver.justified

    def test_nested_parens_and_trailing_text(self):
        waivers = _parse_waivers(
            "y = 2  # repro-lint: disable=R004 (t0 (epoch) plus dt (us))\n"
        )
        (waiver,) = waivers.values()
        assert waiver.reason == "t0 (epoch) plus dt (us)"

    def test_multiple_codes_with_parens_in_reason(self):
        waivers = _parse_waivers(
            "z = 3  # repro-lint: disable=R001,R004 (a (b) c)\n"
        )
        (waiver,) = waivers.values()
        assert waiver.codes == frozenset({"R001", "R004"})
        assert waiver.reason == "a (b) c"

    def test_missing_reason_is_unjustified(self):
        waivers = _parse_waivers("w = 4  # repro-lint: disable=R001\n")
        (waiver,) = waivers.values()
        assert not waiver.justified

    def test_waiver_with_paren_reason_end_to_end(self, tmp_path):
        path = tmp_path / "sample.py"
        path.write_text(
            "def f(rps):\n"
            "    wait_us = 1e6 / rps  # repro-lint: disable=R001 "
            "(1/rps is seconds (SI), scaled by 1e6 to us)\n"
        )
        report = lint_paths([path])
        assert report.ok
        if report.waived:  # only if R001 actually fired on this shape
            assert "(SI)" in report.waived[0].waiver_reason


class TestSarif:
    def test_sarif_document_shape(self):
        report = lint_paths([FIXTURES / "r001_units.py"])
        doc = json.loads(sarif_report(report))
        assert doc["version"] == "2.1.0"
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro-analysis"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert rule_ids == {
            "R001", "R002", "R003", "R004", "R005", "R006", "R007",
        }
        (result,) = run["results"]
        assert result["ruleId"] == "R001"
        assert result["partialFingerprints"]["reproAnalysis/v1"]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1

    def test_waived_violation_exported_as_suppressed(self):
        report = lint_paths([FIXTURES / "waived_ok.py"])
        doc = json.loads(sarif_report(report))
        (result,) = doc["runs"][0]["results"]
        (suppression,) = result["suppressions"]
        assert suppression["kind"] == "inSource"
        assert "microseconds" in suppression["justification"]

    def test_cli_sarif_flag(self):
        proc = _cli("--sarif", str(FIXTURES / "r004_scheduling.py"))
        assert proc.returncode == 1
        doc = json.loads(proc.stdout)
        assert doc["runs"][0]["results"][0]["ruleId"] == "R004"

    def test_json_and_sarif_mutually_exclusive(self):
        proc = _cli("--json", "--sarif", str(FIXTURES / "r001_units.py"))
        assert proc.returncode == 2


class TestBaseline:
    def test_round_trip_suppresses_known_findings(self, tmp_path):
        report = lint_paths([FIXTURES / "r001_units.py"])
        assert not report.ok
        target = tmp_path / "baseline.json"
        count = write_baseline(report, target)
        assert count == 1
        doc = load_baseline(target)
        assert doc["schema_version"] == BASELINE_SCHEMA_VERSION
        suppressed = apply_baseline(report, doc)
        assert suppressed.ok
        assert len(suppressed.baselined) == 1
        assert stale_entries(report, doc) == []

    def test_stale_entry_detected(self, tmp_path):
        report = lint_paths([FIXTURES / "r001_units.py"])
        target = tmp_path / "baseline.json"
        write_baseline(report, target)
        clean = lint_paths([FIXTURES / "waived_ok.py"])
        stale = stale_entries(clean, load_baseline(target))
        assert len(stale) == 1
        assert stale[0]["rule"] == "R001"

    def test_reader_rejects_bad_documents(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema_version": 99, "entries": []}))
        with pytest.raises(ValueError, match="schema_version"):
            load_baseline(bad)
        bad.write_text(json.dumps({"schema_version": 1}))
        with pytest.raises(ValueError, match="missing fields"):
            load_baseline(bad)

    def test_cli_baseline_flow(self, tmp_path):
        target = tmp_path / "baseline.json"
        fixture = str(FIXTURES / "r001_units.py")
        # no baseline: fails
        assert _cli(fixture).returncode == 1
        # write, then re-run with it: passes, finding reported as baselined
        assert _cli(fixture, "--write-baseline", str(target)).returncode == 0
        proc = _cli(fixture, "--baseline", str(target), "--json")
        assert proc.returncode == 0
        payload = json.loads(proc.stdout)
        assert payload["suppressed"] == 1
        assert payload["violations"][0]["suppressed"] is True

    def test_cli_stale_baseline_exits_2(self, tmp_path):
        target = tmp_path / "baseline.json"
        fixture = str(FIXTURES / "r001_units.py")
        assert _cli(fixture, "--write-baseline", str(target)).returncode == 0
        # lint a clean file against that baseline: every entry is stale
        proc = _cli(
            str(FIXTURES / "waived_ok.py"),
            "--baseline", str(target), "--check-baseline",
        )
        assert proc.returncode == 2
        assert "stale baseline entry" in proc.stderr

    def test_committed_baseline_is_empty_and_in_sync(self):
        # the repo gate: src is fully clean, so the committed baseline
        # must hold zero entries (it may only ever shrink)
        doc = load_baseline(REPO / "analysis-baseline.json")
        assert doc["entries"] == []
        report = lint_paths([REPO / "src"])
        assert stale_entries(report, doc) == []


class TestDeterminism:
    def test_json_report_byte_identical_across_invocations(self, tmp_path):
        cache = tmp_path / "cache"
        args = ("--json", "tests/analysis/fixtures")
        first = _cli(*args, cache_dir=cache)
        second = _cli(*args, cache_dir=cache)
        assert first.stdout == second.stdout
        assert first.stdout.encode() == second.stdout.encode()

    def test_sarif_byte_identical(self, tmp_path):
        cache = tmp_path / "cache"
        args = ("--sarif", "tests/analysis/fixtures")
        assert (
            _cli(*args, cache_dir=cache).stdout
            == _cli(*args, cache_dir=cache).stdout
        )


class TestParseCache:
    def test_disk_cache_written_and_reused(self, tmp_path, monkeypatch):
        cache = tmp_path / "cache"
        monkeypatch.setenv("REPRO_LINT_CACHE_DIR", str(cache))
        sample = tmp_path / "sample.py"
        sample.write_text("def f():\n    return 1\n")
        first = ModuleSource.load(sample)
        entries = list(cache.glob("*.pkl"))
        assert len(entries) == 1
        # a fresh process (simulated by clearing the in-memory cache)
        # must hit the disk entry, not re-parse
        from repro.analysis import engine as engine_mod

        engine_mod._MEM_CACHE.clear()
        again = ModuleSource.load(sample)
        assert again.text == first.text
        assert again.module == first.module

    def test_stale_entry_invalidated_on_change(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LINT_CACHE_DIR", str(tmp_path / "cache"))
        sample = tmp_path / "sample.py"
        sample.write_text("A = 1\n")
        assert "A = 1" in ModuleSource.load(sample).text
        os.utime(sample, ns=(1, 1))  # force distinct mtime either side
        sample.write_text("B = 2\n")
        assert "B = 2" in ModuleSource.load(sample).text

    def test_cross_process_reuse(self, tmp_path):
        # two real processes, one cache dir: the second run parses nothing
        # new (same bytes out either way — this asserts correctness, the
        # cache itself is validated by the single-process test above)
        cache = tmp_path / "cache"
        out1 = _cli("--json", "tests/analysis/fixtures", cache_dir=cache)
        assert list(cache.glob("*.pkl")), "disk cache must be populated"
        out2 = _cli("--json", "tests/analysis/fixtures", cache_dir=cache)
        assert out1.stdout == out2.stdout


class TestChanged:
    def _init_repo(self, tmp_path):
        def git(*args):
            subprocess.run(
                ["git", "-c", "user.name=t", "-c", "user.email=t@t", *args],
                cwd=tmp_path, check=True, capture_output=True,
            )
        git("init", "-q")
        return git

    def test_changed_reports_only_touched_files(self, tmp_path):
        git = self._init_repo(tmp_path)
        bad = "def f(delay_ms):\n    delay_us = delay_ms\n"
        (tmp_path / "one.py").write_text(bad)
        (tmp_path / "two.py").write_text(bad)
        git("add", ".")
        git("commit", "-q", "-m", "seed")
        # untouched tree: nothing changed, exit 0 despite violations
        proc = _cli(".", "--changed", cwd=tmp_path)
        assert proc.returncode == 0, proc.stderr
        assert "no python files changed" in proc.stdout
        # touch one file: only its violation is reported
        (tmp_path / "one.py").write_text(bad + "\n# touched\n")
        proc = _cli(".", "--changed", "--json", cwd=tmp_path)
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        paths = {v["path"] for v in payload["violations"]}
        assert all("one.py" in p for p in paths), paths

    def test_untracked_files_are_included(self, tmp_path):
        git = self._init_repo(tmp_path)
        (tmp_path / "clean.py").write_text("X = 1\n")
        git("add", ".")
        git("commit", "-q", "-m", "seed")
        (tmp_path / "fresh.py").write_text(
            "def f(delay_ms):\n    delay_us = delay_ms\n"
        )
        proc = _cli(".", "--changed", cwd=tmp_path)
        assert proc.returncode == 1
        assert "fresh.py" in proc.stdout

    def test_outside_git_exits_2(self, tmp_path):
        # tmp_path lives outside any repository: --changed must fail loudly
        (tmp_path / "a.py").write_text("X = 1\n")
        proc = _cli(".", "--changed", cwd=tmp_path)
        assert proc.returncode == 2
        assert "git" in proc.stderr
