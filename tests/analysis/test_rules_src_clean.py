"""The shipped tree satisfies its own lint gate (the acceptance criterion)."""

from pathlib import Path

from repro.analysis import lint_paths

SRC = Path(__file__).resolve().parents[2] / "src"


def test_simulation_packages_are_clean():
    """``repro.ssd`` and ``repro.core`` carry no active violations."""
    report = lint_paths([SRC / "repro" / "ssd", SRC / "repro" / "core"])
    assert report.ok, "\n".join(v.format() for v in report.active)


def test_whole_src_tree_is_clean():
    report = lint_paths([SRC])
    assert report.ok, "\n".join(v.format() for v in report.active)
    # waivers stay visible in the report even though they do not fail it
    assert all(v.waiver_reason for v in report.waived)
