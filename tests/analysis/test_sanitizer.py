"""Runtime sanitizer: each invariant trips on a deliberately corrupted run."""

import heapq

import pytest

from repro.analysis import Sanitizer, SanitizerError
from repro.ssd import SSDConfig
from repro.ssd.engine import EventLoop, Resource
from repro.ssd.ftl.mapping import FlashArrayState, MappingTable


def small_state() -> FlashArrayState:
    return FlashArrayState(
        SSDConfig(
            channels=2,
            chips_per_channel=1,
            dies_per_chip=1,
            planes_per_die=1,
            blocks_per_plane=8,
            pages_per_block=4,
        )
    )


class TestMappingBijectivity:
    def test_corrupt_reverse_entry_detected(self):
        mapping = MappingTable()
        mapping.bind(1, 100)
        mapping.bind(2, 200)
        mapping._p2l[200] = 1  # corrupt: two PPNs now claim LPN 1
        with pytest.raises(SanitizerError) as exc:
            Sanitizer().check_mapping(mapping)
        assert exc.value.invariant == "mapping-bijectivity"
        assert "mapping-bijectivity" in str(exc.value)

    def test_dangling_forward_entry_detected(self):
        mapping = MappingTable()
        mapping.bind(7, 70)
        del mapping._p2l[70]  # forward half survives, reverse half gone
        with pytest.raises(SanitizerError) as exc:
            Sanitizer().check_mapping(mapping)
        assert exc.value.invariant == "mapping-bijectivity"

    def test_attached_sanitizer_checks_each_bind(self):
        mapping = MappingTable()
        sanitizer = Sanitizer()
        mapping.attach_sanitizer(sanitizer)
        mapping.bind(1, 10)
        mapping.bind(2, 20)
        mapping.unbind_ppn(10)
        assert sanitizer.mapping_ops == 3

    def test_clean_mapping_passes(self):
        mapping = MappingTable()
        mapping.bind(1, 10)
        Sanitizer().check_mapping(mapping)  # no raise


class TestResourceMutualExclusion:
    def test_double_grant_detected(self):
        loop = EventLoop()
        channel = Resource(loop, name="ch0", kind="channel")
        sanitizer = Sanitizer()
        sanitizer.on_grant(channel, 0.0, 10.0)
        with pytest.raises(SanitizerError) as exc:
            sanitizer.on_grant(channel, 5.0, 1.0)  # starts inside [0, 10)
        assert exc.value.invariant == "resource-mutual-exclusion"
        assert "double-granted" in exc.value.detail

    def test_negative_duration_detected(self):
        loop = EventLoop()
        die = Resource(loop, name="die3", kind="die")
        with pytest.raises(SanitizerError) as exc:
            Sanitizer().on_grant(die, 0.0, -1.0)
        assert exc.value.invariant == "resource-mutual-exclusion"

    def test_back_to_back_grants_pass(self):
        loop = EventLoop()
        channel = Resource(loop, name="ch0", kind="channel")
        sanitizer = Sanitizer()
        sanitizer.on_grant(channel, 0.0, 10.0)
        sanitizer.on_grant(channel, 10.0, 5.0)  # touching intervals are fine
        assert sanitizer.grants_checked == 2

    def test_real_resource_contention_is_clean(self):
        """The engine's own grant chain never trips the shadow check."""
        loop = EventLoop()
        channel = Resource(loop, name="ch0", kind="channel")
        sanitizer = Sanitizer()
        loop.sanitizer = sanitizer
        channel.sanitizer = sanitizer
        starts = []
        for _ in range(4):
            channel.acquire((0, loop.now, 0), 7.0, starts.append)
        loop.run()
        assert starts == [0.0, 7.0, 14.0, 21.0]
        assert sanitizer.grants_checked == 4


class TestEventTimeMonotonicity:
    def test_skewed_event_detected(self):
        loop = EventLoop()
        loop.sanitizer = Sanitizer()
        loop.schedule(10.0, lambda: None)
        loop.run()
        assert loop.now == 10.0
        # bypass schedule()'s guard: push a past-time event straight into
        # the heap, the way a corrupted component would
        heapq.heappush(loop._heap, (5.0, 0, lambda: None, False))
        with pytest.raises(SanitizerError) as exc:
            loop.run()
        assert exc.value.invariant == "event-time-monotonicity"

    def test_normal_run_is_clean(self):
        loop = EventLoop()
        sanitizer = Sanitizer()
        loop.sanitizer = sanitizer
        for t in (3.0, 1.0, 2.0):
            loop.schedule(t, lambda: None)
        loop.run()
        assert sanitizer.events_checked == 3


class TestCapacityConservation:
    def test_inflated_live_count_detected(self):
        state = small_state()
        plane = state.planes[0]
        for lpn in range(6):
            state.write(lpn, plane)
        plane.live_pages += 1  # corrupt the books
        with pytest.raises(SanitizerError) as exc:
            Sanitizer().check_plane(plane)
        assert exc.value.invariant == "capacity-conservation"

    def test_skewed_block_validity_detected(self):
        state = small_state()
        plane = state.planes[0]
        for lpn in range(6):
            state.write(lpn, plane)
        plane.valid_count[0] -= 1  # per-block books no longer sum to live
        with pytest.raises(SanitizerError) as exc:
            Sanitizer().check_plane(plane)
        assert exc.value.invariant == "capacity-conservation"

    def test_clean_plane_passes(self):
        state = small_state()
        plane = state.planes[0]
        for lpn in range(6):
            state.write(lpn, plane)
        sanitizer = Sanitizer()
        sanitizer.check_plane(plane)
        assert sanitizer.conservation_checks == 1


class TestReporting:
    def test_error_carries_recent_event_trace(self):
        loop = EventLoop()
        channel = Resource(loop, name="ch0", kind="channel")
        sanitizer = Sanitizer()
        sanitizer.on_grant(channel, 0.0, 10.0)
        with pytest.raises(SanitizerError) as exc:
            sanitizer.on_grant(channel, 2.0, 1.0)
        assert exc.value.trace  # the good grant is in the ring buffer
        assert "recent events" in str(exc.value)
        assert "grant channel/ch0" in str(exc.value)

    def test_stats_expose_all_counters(self):
        stats = Sanitizer().stats()
        assert set(stats) == {
            "events_checked",
            "grants_checked",
            "mapping_ops",
            "conservation_checks",
        }
