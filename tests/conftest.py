"""Shared fixtures and hypothesis settings."""

from __future__ import annotations

from hypothesis import HealthCheck, settings
import numpy as np
import pytest

from repro.ssd import SSDConfig

# Keep property tests fast on the single-core CI box.
settings.register_profile(
    "repro",
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def paper_config() -> SSDConfig:
    """The exact Table-I device."""
    return SSDConfig.paper()


@pytest.fixture
def small_config() -> SSDConfig:
    """Paper topology with fewer blocks (fast sweeps)."""
    return SSDConfig.small()


@pytest.fixture
def tiny_config() -> SSDConfig:
    """Very small planes so GC triggers with short traces."""
    return SSDConfig(
        channels=8,
        chips_per_channel=2,
        dies_per_chip=1,
        planes_per_die=2,
        blocks_per_plane=8,
        pages_per_block=8,
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
