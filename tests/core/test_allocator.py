"""Channel allocator: inference and the Section IV-D overhead model."""

import numpy as np
import pytest

from repro.core import ChannelAllocator, Dataset, FeatureVector, StrategyLearner, StrategySpace


@pytest.fixture
def trained_learner(rng):
    space = StrategySpace(8, 4)
    rows = []
    labels = []
    for _ in range(120):
        fv = FeatureVector(
            int(rng.integers(0, 20)),
            tuple(int(rng.integers(0, 2)) for _ in range(4)),
            tuple(rng.dirichlet(np.ones(4))),
        )
        rows.append(fv.to_array())
        labels.append(0 if fv.intensity_level < 10 else 1)
    ds = Dataset(features=np.vstack(rows), labels=np.array(labels), n_classes=42)
    learner = StrategyLearner(space, seed=0)
    learner.train(ds, iterations=40, seed=0)
    return learner


class TestAllocation:
    def test_allocate_returns_strategy_and_logs(self, trained_learner):
        allocator = ChannelAllocator(trained_learner)
        fv = FeatureVector(5, (0, 1, 0, 1), (0.25, 0.25, 0.25, 0.25))
        strategy = allocator.allocate(fv)
        assert strategy in list(trained_learner.space)
        assert allocator.decisions == [(fv, strategy)]

    def test_channel_sets_cover_all_tenants(self, trained_learner):
        allocator = ChannelAllocator(trained_learner)
        fv = FeatureVector(15, (0, 0, 1, 1), (0.4, 0.2, 0.2, 0.2))
        sets = allocator.channel_sets(fv)
        assert set(sets) == {0, 1, 2, 3}
        for chans in sets.values():
            assert chans

    def test_rejects_tenant_count_mismatch(self, trained_learner):
        allocator = ChannelAllocator(trained_learner)
        with pytest.raises(ValueError):
            allocator.allocate(FeatureVector(5, (0, 1), (0.5, 0.5)))


class TestOverheadModel:
    def test_paper_numbers_for_9_64_42(self, trained_learner):
        """Section IV-D: 16 B/neuron storage; sum(N_i*N_{i+1}) multiplies."""
        report = ChannelAllocator(trained_learner).overhead_report()
        assert report.layer_sizes == (9, 64, 42)
        assert report.storage_bytes == 1696
        assert report.multiplies_per_inference == 3264

    def test_overhead_is_negligible_for_an_ssd_controller(self, trained_learner):
        """The paper's conclusion: the allocator fits trivially in an FTL."""
        report = ChannelAllocator(trained_learner).overhead_report()
        assert report.storage_bytes < 64 * 1024       # << controller SRAM
        assert report.multiplies_per_inference < 10_000

    def test_custom_bytes_per_neuron(self, trained_learner):
        report = ChannelAllocator(trained_learner).overhead_report(bytes_per_neuron=8)
        assert report.storage_bytes == 848

    def test_str(self, trained_learner):
        text = str(ChannelAllocator(trained_learner).overhead_report())
        assert "1696 B" in text
