"""Drift detector — Page–Hinkley residuals and feature mean shift."""

import numpy as np
import pytest

from repro.core import DriftConfig, DriftDetector, DriftEvent


def feed(detector, residuals, base=None):
    """Feed constant features with the given residual stream."""
    x = np.zeros(3) if base is None else np.asarray(base, dtype=float)
    events = []
    for i, residual in enumerate(residuals):
        events.extend(detector.update(float(i) * 1000.0, x, residual))
    return events


class TestConfigValidation:
    def test_defaults_are_valid(self):
        DriftConfig()

    @pytest.mark.parametrize("kwargs", [
        {"min_windows": 0},
        {"residual_delta": -0.1},
        {"residual_threshold": 0.0},
        {"feature_window": 0},
        {"feature_threshold": 0.0},
        {"cooldown_windows": -1},
        {"degrade_after": 0},
        {"unhealthy_residual": 0.0},
    ])
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DriftConfig(**kwargs)


class TestResidualDrift:
    def test_stable_residuals_never_alarm(self):
        detector = DriftDetector(DriftConfig(min_windows=2))
        events = feed(detector, [0.01, -0.02, 0.0, 0.01, -0.01] * 5)
        assert events == []
        assert detector.detections == 0

    def test_sustained_underprediction_alarms(self):
        detector = DriftDetector(DriftConfig(min_windows=2))
        events = feed(detector, [0.0, 0.0, 0.8, 0.9, 0.8, 0.9])
        kinds = [e.kind for e in events]
        assert "residual" in kinds
        assert detector.residual_alarms >= 1

    def test_none_residuals_are_neutral(self):
        detector = DriftDetector(DriftConfig(min_windows=2))
        events = feed(detector, [None] * 10)
        assert events == []

    def test_event_carries_statistic_and_threshold(self):
        cfg = DriftConfig(min_windows=2, residual_threshold=0.4)
        detector = DriftDetector(cfg)
        events = feed(detector, [0.0, 0.0, 0.9, 0.9, 0.9])
        assert events
        event = events[0]
        assert event.statistic > event.threshold == 0.4
        round_tripped = event.to_dict()
        assert round_tripped["kind"] == "residual"
        assert round_tripped["window_index"] == event.window_index


class TestFeatureDrift:
    def test_mean_shift_alarms(self):
        cfg = DriftConfig(min_windows=2, feature_window=2,
                          feature_threshold=3.0)
        detector = DriftDetector(cfg)
        events = []
        for i in range(4):  # reference + recent fill at the old level
            events.extend(detector.update(i * 1000.0, np.zeros(3), 0.0))
        for i in range(4, 8):  # shifted regime
            events.extend(detector.update(i * 1000.0, np.full(3, 5.0), 0.0))
        assert any(e.kind == "feature" for e in events)
        assert detector.feature_alarms >= 1

    def test_constant_features_never_alarm(self):
        detector = DriftDetector(DriftConfig(min_windows=2, feature_window=2))
        events = feed(detector, [0.0] * 12, base=[1.0, 2.0, 3.0])
        assert [e for e in events if e.kind == "feature"] == []


class TestAnchoringAndCooldown:
    def test_alarm_reanchors_so_new_regime_is_baseline(self):
        cfg = DriftConfig(min_windows=2, feature_window=2,
                          cooldown_windows=0)
        detector = DriftDetector(cfg)
        events = []
        for i in range(4):
            events.extend(detector.update(i * 1000.0, np.zeros(3), 0.0))
        for i in range(4, 20):  # long stay in the new regime
            events.extend(detector.update(i * 1000.0, np.full(3, 5.0), 0.0))
        # one episode, not one alarm per post-shift window
        assert len([e for e in events if e.kind == "feature"]) <= 2

    def test_cooldown_suppresses_follow_on_alarms(self):
        cfg = DriftConfig(min_windows=1, residual_threshold=0.3,
                          cooldown_windows=3)
        detector = DriftDetector(cfg)
        feed(detector, [0.0, 0.9, 0.9])
        fired = detector.detections
        assert fired >= 1
        feed(detector, [0.9] * 2)  # inside cooldown: nothing may fire
        assert detector.detections == fired

    def test_reset_preserves_cumulative_counters(self):
        detector = DriftDetector(DriftConfig(min_windows=1,
                                             residual_threshold=0.3))
        feed(detector, [0.0, 0.9, 0.9, 0.9])
        assert detector.detections >= 1
        windows, detections = detector.windows, detector.detections
        detector.reset()
        assert detector.windows == windows
        assert detector.detections == detections


class TestDeterminism:
    def test_same_stream_same_events(self):
        cfg = DriftConfig(min_windows=2, feature_window=2)
        rng = np.random.default_rng(3)
        stream = [(rng.random(5), float(r)) for r in rng.normal(0.0, 0.4, 40)]
        runs = []
        for _ in range(2):
            detector = DriftDetector(cfg)
            events = []
            for i, (x, residual) in enumerate(stream):
                events.extend(detector.update(i * 1000.0, x, residual))
            runs.append([e.to_dict() for e in events])
        assert runs[0] == runs[1]

    def test_events_are_frozen(self):
        event = DriftEvent(time_us=1.0, window_index=0, kind="residual",
                           statistic=1.0, threshold=0.5)
        with pytest.raises(AttributeError):
            event.kind = "feature"
