"""Learner quality evaluation (regret-based)."""

import numpy as np
import pytest

from repro.core import (
    Dataset,
    FeatureVector,
    LabeledSample,
    LabelerConfig,
    QualityReport,
    StrategyLearner,
    StrategySpace,
    evaluate_learner,
    holdout_samples,
)
from repro.ssd import SSDConfig


def synthetic_samples(space, rng, n=60):
    """Hand-built samples where strategy 0 is optimal iff level < 10."""
    samples = []
    for _ in range(n):
        level = int(rng.integers(0, 20))
        fv = FeatureVector(
            level,
            tuple(int(rng.integers(0, 2)) for _ in range(4)),
            tuple(rng.dirichlet(np.ones(4))),
        )
        totals = np.full(len(space), 200.0)
        best = 0 if level < 10 else 1
        totals[best] = 100.0
        totals[2] = 104.0  # a near-tie within 5%
        samples.append(
            LabeledSample(
                features=fv, label=best, total_latencies_us=totals.tolist()
            )
        )
    return samples


@pytest.fixture
def space():
    return StrategySpace(8, 4)


@pytest.fixture
def trained(space, rng):
    samples = synthetic_samples(space, rng, n=200)
    ds = Dataset(
        features=np.vstack([s.features.to_array() for s in samples]),
        labels=np.array([s.label for s in samples]),
        n_classes=len(space),
    )
    learner = StrategyLearner(space, seed=0)
    learner.train(ds, iterations=80, seed=0)
    return learner, samples


class TestEvaluateLearner:
    def test_report_fields_consistent(self, trained):
        learner, samples = trained
        report = evaluate_learner(learner, samples)
        assert isinstance(report, QualityReport)
        assert report.n_samples == len(samples)
        assert 0 <= report.top1_accuracy <= report.top3_accuracy <= report.top5_accuracy <= 1
        assert 1.0 <= report.median_regret <= report.mean_regret or report.mean_regret >= 1.0
        assert report.worst_regret >= report.p95_regret >= report.median_regret
        assert report.within_5pct >= 0
        assert report.within_10pct >= report.within_5pct

    def test_good_learner_has_low_regret(self, trained):
        learner, samples = trained
        report = evaluate_learner(learner, samples)
        assert report.top1_accuracy > 0.8
        assert report.mean_regret < 1.3

    def test_rows_render(self, trained):
        learner, samples = trained
        rows = evaluate_learner(learner, samples).rows()
        assert any("top-3" in r[0] for r in rows)

    def test_empty_samples_rejected(self, trained):
        learner, _ = trained
        with pytest.raises(ValueError):
            evaluate_learner(learner, [])

    def test_perfect_oracle_regret_is_one(self, space, rng):
        """If predictions always match labels, regret == 1 everywhere."""
        samples = synthetic_samples(space, rng, n=50)
        # Build a learner that memorises by training on the same samples hard.
        ds = Dataset(
            features=np.vstack([s.features.to_array() for s in samples]),
            labels=np.array([s.label for s in samples]),
            n_classes=len(space),
        )
        learner = StrategyLearner(space, seed=1)
        learner.train(ds, iterations=200, train_fraction=0.95, seed=1)
        report = evaluate_learner(learner, samples)
        if report.top1_accuracy == 1.0:
            assert report.mean_regret == pytest.approx(1.0)


class TestHoldout:
    def test_generates_fresh_labelled_samples(self):
        cfg = LabelerConfig(
            ssd=SSDConfig.small(),
            window_requests_max=300,
            window_s=0.02,
            replications=1,
        )
        space = StrategySpace()
        samples = holdout_samples(cfg, space, 3, seed=5)
        assert len(samples) == 3
        for s in samples:
            assert len(s.total_latencies_us) == len(space)

    def test_validation(self):
        cfg = LabelerConfig()
        with pytest.raises(ValueError):
            holdout_samples(cfg, StrategySpace(), 0)
