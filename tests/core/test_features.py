"""Feature vectors and the features collector."""

from hypothesis import given
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.core import N_INTENSITY_LEVELS, FeaturesCollector, FeatureVector, features_of_mix
from repro.ssd import IORequest, OpType
from repro.workloads import WorkloadSpec, generate, mix


def req(wid, op, t=0.0):
    return IORequest(arrival_us=t, workload_id=wid, op=op, lpn=0)


class TestFeatureVector:
    def test_paper_example_shape(self):
        """The paper's example: [5] [1,0,1,0] [0.1,0.2,0.3,0.4]."""
        fv = FeatureVector(
            intensity_level=5,
            characteristics=(1, 0, 1, 0),
            proportions=(0.1, 0.2, 0.3, 0.4),
        )
        assert fv.dimensions == 9
        assert fv.n_tenants == 4
        assert str(fv) == "[5] [1,0,1,0] [0.10,0.20,0.30,0.40]"

    def test_to_array_layout(self):
        fv = FeatureVector(3, (0, 1), (0.25, 0.75))
        assert np.allclose(fv.to_array(), [3.0, 0.0, 1.0, 0.25, 0.75])

    def test_array_roundtrip(self):
        fv = FeatureVector(7, (1, 0, 0, 1), (0.4, 0.1, 0.2, 0.3))
        assert FeatureVector.from_array(fv.to_array(), 4) == fv

    def test_from_array_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            FeatureVector.from_array(np.zeros(8), 4)

    def test_write_dominated_mask(self):
        fv = FeatureVector(0, (0, 1, 0, 1), (0.25, 0.25, 0.25, 0.25))
        assert fv.write_dominated() == [True, False, True, False]

    def test_total_write_proportion(self):
        """Figure 6's Y axis: shares of the write-dominated tenants."""
        fv = FeatureVector(0, (0, 1, 0, 1), (0.4, 0.1, 0.2, 0.3))
        assert fv.total_write_proportion() == pytest.approx(0.6)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(intensity_level=-1, characteristics=(0,), proportions=(1.0,)),
            dict(intensity_level=20, characteristics=(0,), proportions=(1.0,)),
            dict(intensity_level=0, characteristics=(2,), proportions=(1.0,)),
            dict(intensity_level=0, characteristics=(0, 1), proportions=(1.0,)),
            dict(intensity_level=0, characteristics=(0, 1), proportions=(0.9, 0.3)),
            dict(intensity_level=0, characteristics=(0, 1), proportions=(-0.1, 1.1)),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FeatureVector(**kwargs)


class TestFeaturesCollector:
    def test_characteristics_from_majorities(self):
        col = FeaturesCollector(2, intensity_quantum=10)
        for _ in range(3):
            col.observe(req(0, OpType.WRITE))
        col.observe(req(0, OpType.READ))
        for _ in range(4):
            col.observe(req(1, OpType.READ))
        fv = col.collect()
        assert fv.characteristics == (0, 1)
        assert fv.proportions == (0.5, 0.5)

    def test_intensity_levels_quantise_counts(self):
        col = FeaturesCollector(1, intensity_quantum=10)
        for _ in range(25):
            col.observe(req(0, OpType.READ))
        assert col.collect().intensity_level == 2

    def test_intensity_saturates_at_top_level(self):
        col = FeaturesCollector(1, intensity_quantum=1)
        for _ in range(100):
            col.observe(req(0, OpType.READ))
        assert col.collect().intensity_level == N_INTENSITY_LEVELS - 1

    def test_idle_tenant_defaults_to_read(self):
        col = FeaturesCollector(2, intensity_quantum=10)
        col.observe(req(0, OpType.WRITE))
        fv = col.collect()
        assert fv.characteristics == (0, 1)
        assert fv.proportions == (1.0, 0.0)

    def test_empty_window_rejected(self):
        with pytest.raises(RuntimeError):
            FeaturesCollector(1, intensity_quantum=10).collect()

    def test_reset(self):
        col = FeaturesCollector(1, intensity_quantum=10)
        col.observe(req(0, OpType.READ))
        col.reset()
        assert col.total_observed == 0

    def test_out_of_range_workload_rejected(self):
        col = FeaturesCollector(2, intensity_quantum=10)
        with pytest.raises(ValueError):
            col.observe(req(5, OpType.READ))

    def test_validation(self):
        with pytest.raises(ValueError):
            FeaturesCollector(0, intensity_quantum=10)
        with pytest.raises(ValueError):
            FeaturesCollector(1, intensity_quantum=0)

    @given(
        counts=st.lists(st.integers(0, 30), min_size=2, max_size=4),
    )
    def test_proportions_always_sum_to_one(self, counts):
        if sum(counts) == 0:
            return
        col = FeaturesCollector(len(counts), intensity_quantum=10)
        for wid, n in enumerate(counts):
            for _ in range(n):
                col.observe(req(wid, OpType.READ))
        fv = col.collect()
        assert sum(fv.proportions) == pytest.approx(1.0)


class TestFeaturesOfMix:
    def test_matches_manual_collection(self):
        writer = WorkloadSpec(name="w", write_ratio=1.0, rate_rps=1000,
                              footprint_pages=1024)
        reader = WorkloadSpec(name="r", write_ratio=0.0, rate_rps=1000,
                              footprint_pages=1024)
        mixed = mix(
            [
                generate(writer, 50, workload_id=0, seed=1),
                generate(reader, 50, workload_id=1, seed=2),
            ],
            [writer, reader],
        )
        fv = features_of_mix(mixed, intensity_quantum=10)
        assert fv.characteristics == (0, 1)
        assert fv.intensity_level == 10  # 100 requests / quantum 10
        assert fv.proportions[0] == pytest.approx(0.5)
