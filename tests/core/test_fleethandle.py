"""Per-device keeper handle: static sets, fallback protocol, publishing."""

import numpy as np
import pytest

from repro.core import (
    ChannelAllocator,
    Dataset,
    FeatureVector,
    KeeperHandle,
    StrategyLearner,
    StrategySpace,
)
from repro.obs.registry import MetricsRegistry


@pytest.fixture
def trained_allocator(rng):
    space = StrategySpace(8, 4)
    rows, labels = [], []
    for _ in range(120):
        fv = FeatureVector(
            int(rng.integers(0, 20)),
            tuple(int(rng.integers(0, 2)) for _ in range(4)),
            tuple(rng.dirichlet(np.ones(4))),
        )
        rows.append(fv.to_array())
        labels.append(0 if fv.intensity_level < 10 else 1)
    ds = Dataset(features=np.vstack(rows), labels=np.array(labels), n_classes=42)
    learner = StrategyLearner(space, seed=0)
    learner.train(ds, iterations=40, seed=0)
    return ChannelAllocator(learner)


SETS = {0: [0, 1, 2, 3], 1: [4, 5, 6, 7]}


class TestStaticHandle:
    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            KeeperHandle(-1, SETS)
        with pytest.raises(ValueError):
            KeeperHandle(0, {})

    def test_copies_channel_sets(self):
        source = {0: [0, 1]}
        handle = KeeperHandle(0, source)
        source[0].append(7)
        assert handle.channel_sets == {0: [0, 1]}

    def test_static_decide_keeps_sets_and_counts(self):
        handle = KeeperHandle(0, SETS)
        assert handle.decide(None) == SETS
        assert handle.decide(None) == SETS
        assert handle.decisions == 2
        assert handle.fallbacks == 0
        assert handle.healthy

    def test_publish_lands_health_metrics(self):
        registry = MetricsRegistry()
        handle = KeeperHandle(3, SETS)
        handle.decide(None)
        handle.publish(registry)
        snap = registry.snapshot()
        assert snap["gauges"]["keeper.prediction_healthy"] == 1.0
        assert snap["counters"]["keeper.fallbacks"] == 0
        assert snap["counters"]["keeper.decisions"] == 1

    def test_summary_shape(self):
        handle = KeeperHandle(2, SETS, strategy_label="7:1")
        assert handle.summary() == {
            "device": 2,
            "strategy": "7:1",
            "decisions": 0,
            "fallbacks": 0,
            "healthy": True,
        }


class TestAllocatorBackedHandle:
    def test_healthy_probe_deploys_model_choice(self, trained_allocator):
        handle = KeeperHandle(0, SETS, allocator=trained_allocator)
        fv = FeatureVector(5, (0, 1, 0, 1), (0.25, 0.25, 0.25, 0.25))
        sets = handle.decide(fv)
        # the strategy covers the space's tenant count (4 here)
        assert set(sets) == {0, 1, 2, 3}
        assert all(chs for chs in sets.values())
        assert handle.healthy
        assert handle.fallbacks == 0
        assert handle.strategy_label != ""

    def test_failed_probe_falls_back_to_deployed_sets(self, trained_allocator):
        handle = KeeperHandle(0, SETS, allocator=trained_allocator)
        # a non-finite feature vector is a deterministic probe failure
        bad = FeatureVector(5, (0, 1, 0, 1), (float("nan"), 0.25, 0.25, 0.25))
        sets = handle.decide(bad)
        assert sets == SETS  # graceful fallback keeps the deployed sets
        assert not handle.healthy
        assert handle.fallbacks == 1
        assert handle.last_problem is not None

    def test_fallback_halves_device_health(self, trained_allocator):
        from repro.obs.fleet import device_health

        registry = MetricsRegistry()
        handle = KeeperHandle(0, SETS, allocator=trained_allocator)
        handle.decide(
            FeatureVector(5, (0, 1, 0, 1), (float("nan"), 0.25, 0.25, 0.25))
        )
        handle.publish(registry)
        assert device_health(registry) == pytest.approx(0.5)
