"""Hybrid page-allocation policy."""

import pytest

from repro.core import FeatureVector, PagePolicy, page_modes_for
from repro.ssd import PageAllocMode


class TestPolicyMapping:
    def test_hybrid_assigns_by_characteristic(self):
        """Section IV-E: static for read-dominated, dynamic for write."""
        modes = page_modes_for(PagePolicy.HYBRID, (0, 1, 0, 1))
        assert modes == {
            0: PageAllocMode.DYNAMIC,
            1: PageAllocMode.STATIC,
            2: PageAllocMode.DYNAMIC,
            3: PageAllocMode.STATIC,
        }

    def test_all_static(self):
        modes = page_modes_for(PagePolicy.ALL_STATIC, (0, 1))
        assert set(modes.values()) == {PageAllocMode.STATIC}

    def test_all_dynamic(self):
        modes = page_modes_for(PagePolicy.ALL_DYNAMIC, (0, 1))
        assert set(modes.values()) == {PageAllocMode.DYNAMIC}

    def test_accepts_feature_vector(self):
        fv = FeatureVector(0, (0, 1), (0.5, 0.5))
        modes = page_modes_for(PagePolicy.HYBRID, fv)
        assert modes[0] is PageAllocMode.DYNAMIC
        assert modes[1] is PageAllocMode.STATIC

    def test_rejects_bad_characteristics(self):
        with pytest.raises(ValueError):
            page_modes_for(PagePolicy.HYBRID, (0, 2))

    def test_from_str(self):
        assert PagePolicy.from_str("hybrid") is PagePolicy.HYBRID
        assert PagePolicy.from_str(" ALL-STATIC ") is PagePolicy.ALL_STATIC
        with pytest.raises(ValueError):
            PagePolicy.from_str("mixed")
