"""SSDKeeper: the Algorithm-2 online workflow."""

import numpy as np
import pytest

from repro.core import (
    ChannelAllocator,
    Dataset,
    FeatureVector,
    PagePolicy,
    SSDKeeper,
    StrategyLearner,
    StrategySpace,
)
from repro.ssd import SSDConfig
from repro.workloads import WorkloadSpec, synthesize_mix


def make_allocator(label: int = 8, seed: int = 0) -> ChannelAllocator:
    """An allocator trained to (almost) always answer strategy ``label``."""
    rng = np.random.default_rng(seed)
    space = StrategySpace(8, 4)
    rows = []
    for _ in range(80):
        fv = FeatureVector(
            int(rng.integers(0, 20)),
            tuple(int(rng.integers(0, 2)) for _ in range(4)),
            tuple(rng.dirichlet(np.ones(4))),
        )
        rows.append(fv.to_array())
    ds = Dataset(
        features=np.vstack(rows),
        labels=np.full(80, label),
        n_classes=len(space),
    )
    learner = StrategyLearner(space, seed=0)
    learner.train(ds, iterations=30, seed=0)
    return ChannelAllocator(learner)


def four_tenant_mix(total=600, seed=0):
    specs = [
        WorkloadSpec(name=f"t{i}", write_ratio=1.0 if i % 2 == 0 else 0.0,
                     rate_rps=5000.0, footprint_pages=4096)
        for i in range(4)
    ]
    return synthesize_mix(specs, total_requests=total, seed=seed)


@pytest.fixture
def config():
    return SSDConfig.small()


class TestKeeperRun:
    def test_switches_at_window_end(self, config):
        keeper = SSDKeeper(
            make_allocator(label=8),  # 5:1:1:1
            config,
            collect_window_us=20_000.0,
            intensity_quantum=50.0,
        )
        run = keeper.run(four_tenant_mix().requests)
        assert run.switched
        assert run.strategy is not None
        assert run.strategy.label == "5:1:1:1"
        assert run.switched_at_us == pytest.approx(20_000.0)
        assert run.features is not None
        assert run.result.requests == 600

    def test_features_reflect_collection_window_only(self, config):
        keeper = SSDKeeper(
            make_allocator(),
            config,
            collect_window_us=10_000.0,
            intensity_quantum=10.0,
        )
        mixed = four_tenant_mix()
        run = keeper.run(mixed.requests)
        in_window = sum(1 for r in mixed.requests if r.arrival_us < 10_000.0)
        observed = int(run.features.intensity_level)  # level = count/quantum capped
        assert observed == min(in_window // 10, 19)

    def test_no_switch_when_window_has_no_requests(self, config):
        keeper = SSDKeeper(
            make_allocator(),
            config,
            collect_window_us=0.001,  # closes before the first arrival
            intensity_quantum=10.0,
        )
        run = keeper.run(four_tenant_mix().requests)
        assert not run.switched
        assert run.features is None
        assert run.result.requests == 600

    def test_hybrid_modes_applied_after_switch(self, config):
        keeper = SSDKeeper(
            make_allocator(label=0),  # Shared
            config,
            collect_window_us=15_000.0,
            intensity_quantum=50.0,
            page_policy=PagePolicy.HYBRID,
        )
        run = keeper.run(four_tenant_mix().requests)
        assert run.switched
        # The allocator logged exactly one decision (one Algorithm-2 cycle).
        assert len(keeper.allocator.decisions) == 1

    def test_record_latencies_flows_through(self, config):
        keeper = SSDKeeper(
            make_allocator(),
            config,
            collect_window_us=10_000.0,
            intensity_quantum=10.0,
            record_latencies=True,
        )
        run = keeper.run(four_tenant_mix(total=100).requests)
        assert run.result.read.samples is not None or run.result.write.samples is not None


class TestBaselineRun:
    def test_fixed_strategy_run(self, config):
        allocator = make_allocator()
        keeper = SSDKeeper(
            allocator,
            config,
            collect_window_us=10_000.0,
            intensity_quantum=10.0,
        )
        mixed = four_tenant_mix(total=300)
        fv = FeatureVector(5, (0, 1, 0, 1), (0.25, 0.25, 0.25, 0.25))
        result = keeper.baseline_run(mixed.requests, allocator.space.shared, fv)
        assert result.requests == 300

    def test_baseline_with_page_policy(self, config):
        allocator = make_allocator()
        keeper = SSDKeeper(
            allocator,
            config,
            collect_window_us=10_000.0,
            intensity_quantum=10.0,
        )
        mixed = four_tenant_mix(total=300)
        fv = FeatureVector(5, (0, 1, 0, 1), (0.25, 0.25, 0.25, 0.25))
        result = keeper.baseline_run(
            mixed.requests,
            allocator.space.isolated,
            fv,
            page_policy=PagePolicy.HYBRID,
        )
        assert result.requests == 300


class TestValidation:
    def test_rejects_bad_window(self, config):
        with pytest.raises(ValueError):
            SSDKeeper(
                make_allocator(), config, collect_window_us=0.0, intensity_quantum=1.0
            )

    def test_rejects_channel_mismatch(self):
        with pytest.raises(ValueError):
            SSDKeeper(
                make_allocator(),
                SSDConfig.small(channels=4),
                collect_window_us=1.0,
                intensity_quantum=1.0,
            )
