"""Periodic (multi-window) adaptation — the extension beyond Algorithm 2."""

import numpy as np
import pytest

from repro.core import (
    ChannelAllocator,
    Dataset,
    FeatureVector,
    KeeperDecision,
    PeriodicRun,
    SSDKeeper,
    StrategyLearner,
    StrategySpace,
)
from repro.ssd import SSDConfig
from repro.workloads import WorkloadSpec, synthesize_mix


def make_allocator(seed=0):
    """Learner trained so write-heavy windows pick 7:1 and read-heavy 1:7."""
    rng = np.random.default_rng(seed)
    space = StrategySpace(8, 4)
    rows, labels = [], []
    for _ in range(160):
        fv = FeatureVector(
            int(rng.integers(0, 20)),
            tuple(int(rng.integers(0, 2)) for _ in range(4)),
            tuple(rng.dirichlet(np.ones(4))),
        )
        rows.append(fv.to_array())
        labels.append(
            space.index_of(space.by_label("7:1"))
            if fv.total_write_proportion() > 0.5
            else space.index_of(space.by_label("1:7"))
        )
    ds = Dataset(features=np.vstack(rows), labels=np.array(labels), n_classes=42)
    learner = StrategyLearner(space, seed=0)
    learner.train(ds, iterations=80, seed=0)
    return ChannelAllocator(learner)


def phased_trace(cfg, per_phase=700):
    """Read-heavy first 50 ms, write-heavy afterwards."""
    read_specs = [
        WorkloadSpec(name=f"r{i}", write_ratio=0.0 if i else 1.0,
                     rate_rps=10_000 if i else 2_000, footprint_pages=4096)
        for i in range(4)
    ]
    write_specs = [
        WorkloadSpec(name=f"w{i}", write_ratio=1.0 if i else 0.0,
                     rate_rps=10_000 if i else 2_000, footprint_pages=4096)
        for i in range(4)
    ]
    phase1 = synthesize_mix(read_specs, total_requests=per_phase, seed=1)
    phase2 = synthesize_mix(write_specs, total_requests=per_phase, seed=2)
    offset = 60_000.0
    for r in phase2.requests:
        r.arrival_us += offset
    return phase1.requests + phase2.requests


class TestPeriodicAdaptation:
    @pytest.fixture(scope="class")
    def run(self):
        cfg = SSDConfig.small()
        keeper = SSDKeeper(
            make_allocator(),
            cfg,
            collect_window_us=25_000.0,
            intensity_quantum=50.0,
        )
        return keeper.run_periodic(phased_trace(cfg))

    def test_multiple_decisions(self, run):
        assert run.switches >= 2

    def test_adapts_to_the_phase_change(self, run):
        strategies = run.distinct_strategies()
        assert "1:7" in strategies and "7:1" in strategies
        # Read-heavy phase first: the first decision is the read-favouring one.
        assert run.decisions[0][2].label == "1:7"
        assert run.decisions[-1][2].label == "7:1"

    def test_all_requests_complete(self, run):
        assert run.result.requests == 1400

    def test_decision_times_are_window_aligned(self, run):
        for t, _, _ in run.decisions:
            assert t % 25_000.0 == pytest.approx(0.0, abs=1e-6)

    def test_empty_trace_rejected(self):
        cfg = SSDConfig.small()
        keeper = SSDKeeper(
            make_allocator(), cfg, collect_window_us=1000.0, intensity_quantum=1.0
        )
        with pytest.raises(ValueError):
            keeper.run_periodic([])


class TestPeriodicRunEdgeCases:
    """``switches`` / ``distinct_strategies`` on degenerate runs."""

    def test_zero_decisions(self):
        run = PeriodicRun(result=None, decisions=[])
        assert run.switches == 0
        assert run.distinct_strategies() == []
        assert run.retrains == 0
        assert run.promotions == 0
        assert run.rollbacks == 0

    def test_all_same_strategy(self):
        space = StrategySpace(8, 4)
        shared = space.by_label("Shared")
        decisions = [(float(i) * 1000.0, None, shared) for i in range(5)]
        run = PeriodicRun(result=None, decisions=decisions)
        assert run.switches == 5
        assert run.distinct_strategies() == ["Shared"]

    def test_fallback_only_run_stays_on_shared(self):
        """A keeper whose network is corrupted degrades every window."""
        cfg = SSDConfig.small()
        allocator = make_allocator()
        for param in allocator.learner.network.parameters():
            param.fill(np.nan)
        keeper = SSDKeeper(
            allocator, cfg, collect_window_us=25_000.0, intensity_quantum=50.0
        )
        run = keeper.run_periodic(phased_trace(cfg))
        assert run.switches >= 2
        assert run.distinct_strategies() == ["Shared"]

    def test_realised_latency_is_populated_without_obs(self):
        """Per-window realised deltas no longer require observability."""
        cfg = SSDConfig.small()
        keeper = SSDKeeper(
            make_allocator(), cfg, collect_window_us=25_000.0,
            intensity_quantum=50.0,
        )
        run = keeper.run_periodic(phased_trace(cfg))
        assert len(run.realised_us) == len(run.decisions)
        measured = [v for v in run.realised_us if v is not None]
        assert measured and all(v > 0 for v in measured)

    def test_tail_window_attribution_with_obs(self):
        """The final decision's realised latency is attributed after the
        simulation drains (the last window used to dangle).

        ``horizon_us`` stops the tick schedule at 75ms while arrivals run
        to ~82ms, so the last decision's window completes only after the
        final adaptation tick — exactly the dangling case.
        """
        from repro.obs import Observability

        cfg = SSDConfig.small()
        obs = Observability()
        keeper = SSDKeeper(
            make_allocator(), cfg, collect_window_us=25_000.0,
            intensity_quantum=50.0, obs=obs,
        )
        run = keeper.run_periodic(phased_trace(cfg), horizon_us=50_000.0)
        assert obs.decisions
        last = obs.decisions[-1]
        assert last.realised_mean_us is not None
        assert last.realised_mean_us > 0
        assert run.realised_us[-1] == pytest.approx(last.realised_mean_us)


class TestKeeperDecisionRoundTrip:
    def test_to_dict_from_dict(self):
        decision = KeeperDecision(
            time_us=25_000.0,
            features=FeatureVector(3, (1, 0, 1, 0), (0.4, 0.3, 0.2, 0.1)),
            strategy="7:1",
            window_requests=120,
            predicted_mean_us=88.5,
            realised_mean_us=91.25,
            fallback_reason=None,
        )
        restored = KeeperDecision.from_dict(decision.to_dict())
        assert restored == decision

    def test_round_trip_with_fallback_reason(self):
        decision = KeeperDecision(
            time_us=50_000.0,
            features=FeatureVector(1, (0, 0, 0, 0), (0.25, 0.25, 0.25, 0.25)),
            strategy="Shared",
            window_requests=10,
            fallback_reason="unhealthy prediction: non-finite network output",
        )
        payload = decision.to_dict()
        assert payload["fallback_reason"].startswith("unhealthy")
        restored = KeeperDecision.from_dict(payload)
        assert restored == decision
        assert restored.predicted_mean_us is None
        assert restored.realised_mean_us is None
