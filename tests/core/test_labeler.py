"""Label generation: tie-break, determinism, dataset mechanics."""

import numpy as np
import pytest

from repro.core import (
    Dataset,
    LabelerConfig,
    StrategySpace,
    best_strategy,
    generate_dataset,
    label_sample,
    random_mix,
    random_specs,
)
from repro.core.features import N_INTENSITY_LEVELS, features_of_mix
from repro.core.labeler import _snap_to_grid, pick_label
from repro.ssd import SSDConfig


@pytest.fixture
def fast_cfg():
    """A configuration small enough for test-speed sweeps."""
    return LabelerConfig(
        ssd=SSDConfig.small(),
        n_tenants=4,
        window_requests_max=400,
        window_s=0.02,
        replications=1,
    )


class TestObjective:
    def test_mean_sum_weights_classes_equally(self, fast_cfg, rng):
        from repro.core.labeler import objective_us
        from repro.ssd import LatencyAccumulator, OpType
        from repro.ssd.metrics import build_result

        acc = LatencyAccumulator()
        for _ in range(9):
            acc.add(0, OpType.READ, 10.0)
        acc.add(0, OpType.WRITE, 1000.0)
        result = build_result(acc, makespan_us=1.0, requests=10, subrequests=10)
        # mean-sum: 10 + 1000; total-sum: 9*10 + 1000
        assert objective_us(result, "mean-sum") == 1010.0
        assert objective_us(result, "total-sum") == 1090.0

    def test_unknown_objective_rejected(self):
        from repro.core.labeler import objective_us
        from repro.ssd import LatencyAccumulator
        from repro.ssd.metrics import build_result

        result = build_result(
            LatencyAccumulator(), makespan_us=0.0, requests=0, subrequests=0
        )
        with pytest.raises(ValueError):
            objective_us(result, "geometric")

    def test_config_validates_objective(self):
        with pytest.raises(ValueError):
            LabelerConfig(objective="harmonic")


class TestPickLabel:
    def test_plain_argmin_when_epsilon_zero(self):
        assert pick_label([5.0, 1.0, 3.0], 0.0) == 1

    def test_indifference_band_prefers_earliest(self):
        # 1.02 is within 5% of 1.0 -> index 0 wins.
        assert pick_label([1.02, 1.0, 3.0], 0.05) == 0

    def test_band_excludes_clear_losers(self):
        assert pick_label([2.0, 1.0, 1.2], 0.05) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pick_label([], 0.05)


class TestSnapToGrid:
    def test_sums_to_one_on_grid(self):
        shares = np.array([0.333, 0.333, 0.334])
        snapped = _snap_to_grid(shares, 0.05)
        assert snapped.sum() == pytest.approx(1.0)
        units = snapped / 0.05
        assert np.allclose(units, np.round(units))

    def test_minimum_share_is_one_grid_unit(self):
        snapped = _snap_to_grid(np.array([0.97, 0.01, 0.01, 0.01]), 0.05)
        assert snapped.min() >= 0.05 - 1e-12
        assert snapped.sum() == pytest.approx(1.0)

    def test_rejects_too_coarse_grid(self):
        with pytest.raises(ValueError):
            _snap_to_grid(np.ones(5) / 5, 0.25)


class TestRandomSpecs:
    def test_share_grid_respected(self, fast_cfg, rng):
        specs, total = random_specs(fast_cfg, rng)
        shares = np.array([s.rate_rps for s in specs])
        shares = shares / shares.sum()
        units = shares / fast_cfg.share_grid
        assert np.allclose(units, np.round(units), atol=1e-6)

    def test_pure_ratios(self, fast_cfg, rng):
        for _ in range(5):
            specs, _ = random_specs(fast_cfg, rng)
            assert all(s.write_ratio in (0.0, 1.0) for s in specs)

    def test_nonpure_ratios_avoid_the_boundary(self, rng):
        cfg = LabelerConfig(pure_ratios=False)
        for _ in range(5):
            specs, _ = random_specs(cfg, rng)
            for s in specs:
                assert s.write_ratio <= 0.45 or s.write_ratio >= 0.55

    def test_pinned_intensity_level(self, fast_cfg, rng):
        for level in (0, 10, 19):
            _, total = random_specs(fast_cfg, rng, intensity_level=level)
            expected = max(int(fast_cfg.intensity_quantum * (level + 0.5)), 16)
            assert total == expected

    def test_rejects_bad_level(self, fast_cfg, rng):
        with pytest.raises(ValueError):
            random_specs(fast_cfg, rng, intensity_level=N_INTENSITY_LEVELS)


class TestLabelSample:
    def test_returns_consistent_sample(self, fast_cfg, rng):
        space = StrategySpace()
        sample = label_sample(fast_cfg, rng, space)
        assert 0 <= sample.label < len(space)
        assert len(sample.total_latencies_us) == len(space)
        assert sample.best_latency_us <= min(sample.total_latencies_us) * (
            1 + fast_cfg.tie_epsilon + 1e-9
        )

    def test_label_deterministic_for_same_specs(self, fast_cfg):
        """Two identically-seeded draws must produce the same label (the
        trace seeds derive from the specs, not the caller's rng)."""
        space = StrategySpace()
        a = label_sample(fast_cfg, np.random.default_rng(3), space)
        b = label_sample(fast_cfg, np.random.default_rng(3), space)
        assert a.label == b.label
        assert a.features == b.features

    def test_event_engine_accepted(self, fast_cfg, rng):
        cfg = LabelerConfig(
            ssd=fast_cfg.ssd,
            n_tenants=4,
            window_requests_max=200,
            window_s=0.02,
            replications=1,
            engine="event",
        )
        sample = label_sample(cfg, rng, StrategySpace())
        assert 0 <= sample.label < 42


class TestBestStrategy:
    def test_single_sweep_labels(self, fast_cfg, rng):
        space = StrategySpace()
        mixed = random_mix(fast_cfg, rng, intensity_level=8)
        fv = features_of_mix(mixed, intensity_quantum=fast_cfg.intensity_quantum)
        sample = best_strategy(mixed, fv, space, fast_cfg)
        assert sample.label == pick_label(
            sample.total_latencies_us, fast_cfg.tie_epsilon
        )


class TestDataset:
    def test_generate_and_roundtrip(self, fast_cfg, rng, tmp_path):
        ds = generate_dataset(5, fast_cfg, seed=1)
        assert len(ds) == 5
        assert ds.features.shape == (5, 9)
        assert ds.n_classes == 42
        path = tmp_path / "ds.npz"
        ds.save(path)
        loaded = Dataset.load(path)
        assert np.array_equal(loaded.features, ds.features)
        assert np.array_equal(loaded.labels, ds.labels)
        assert loaded.n_classes == 42

    def test_progress_callback(self, fast_cfg):
        calls = []
        generate_dataset(3, fast_cfg, seed=2, progress=lambda i, n: calls.append((i, n)))
        assert calls == [(1, 3), (2, 3), (3, 3)]

    def test_validation(self):
        with pytest.raises(ValueError):
            Dataset(features=np.zeros((2, 9)), labels=np.zeros(3), n_classes=42)
        with pytest.raises(ValueError):
            Dataset(features=np.zeros((2, 9)), labels=np.array([0, 99]), n_classes=42)
        with pytest.raises(ValueError):
            generate_dataset(0, LabelerConfig())


class TestLabelerConfig:
    def test_defaults_are_paper_shaped(self):
        cfg = LabelerConfig()
        assert cfg.n_tenants == 4
        assert cfg.intensity_quantum == pytest.approx(
            cfg.window_requests_max / N_INTENSITY_LEVELS
        )
        assert cfg.pure_ratios

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_tenants=1),
            dict(window_requests_max=5),
            dict(window_s=0.0),
            dict(engine="magic"),
            dict(replications=0),
            dict(tie_epsilon=-0.1),
            dict(share_grid=0.5),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            LabelerConfig(**kwargs)

    def test_footprint_fits_device(self):
        cfg = LabelerConfig()
        assert cfg.footprint_pages * cfg.n_tenants <= cfg.ssd.logical_pages
