"""Strategy learner: training, prediction, persistence."""

import numpy as np
import pytest

from repro.core import Dataset, FeatureVector, StrategyLearner, StrategySpace


@pytest.fixture
def space():
    return StrategySpace(8, 4)


@pytest.fixture
def toy_dataset(space, rng):
    """Synthetic learnable dataset: label depends on level and write mass."""
    n = 240
    rows = []
    labels = []
    for _ in range(n):
        level = int(rng.integers(0, 20))
        chars = tuple(int(rng.integers(0, 2)) for _ in range(4))
        props = rng.dirichlet(np.ones(4))
        fv = FeatureVector(level, chars, tuple(props))
        rows.append(fv.to_array())
        write_mass = fv.total_write_proportion()
        labels.append(0 if write_mass > 0.5 else (1 if level > 10 else 2))
    return Dataset(features=np.vstack(rows), labels=np.array(labels), n_classes=42)


class TestTraining:
    def test_learns_structured_labels(self, space, toy_dataset):
        learner = StrategyLearner(space, activation="logistic", seed=0)
        history = learner.train(toy_dataset, optimizer="adam", iterations=120, seed=0)
        assert history.final_accuracy > 0.8
        assert history.loss[-1] < history.loss[0]

    def test_history_lengths(self, space, toy_dataset):
        learner = StrategyLearner(space, seed=0)
        history = learner.train(toy_dataset, iterations=10, seed=0)
        assert history.iterations == 10
        assert len(history.test_accuracy) == 10

    def test_rejects_class_count_mismatch(self, space, toy_dataset):
        learner = StrategyLearner(StrategySpace(8, 2), seed=0)  # 8 classes
        with pytest.raises(ValueError):
            learner.train(toy_dataset)

    def test_report_row(self, space, toy_dataset):
        learner = StrategyLearner(space, seed=0)
        learner.train(toy_dataset, optimizer="sgd", iterations=5, seed=0)
        report = learner.report()
        assert report.optimizer == "sgd"
        assert "loss=" in report.row()

    def test_report_requires_training(self, space):
        with pytest.raises(RuntimeError):
            StrategyLearner(space).report()


class TestPrediction:
    def test_predict_returns_space_strategy(self, space, toy_dataset):
        learner = StrategyLearner(space, seed=0)
        learner.train(toy_dataset, iterations=30, seed=0)
        fv = FeatureVector(5, (0, 0, 1, 1), (0.4, 0.3, 0.2, 0.1))
        strategy = learner.predict(fv)
        assert strategy in list(space)
        assert learner.predict_index(fv) == space.index_of(strategy)

    def test_predict_before_training_rejected(self, space):
        fv = FeatureVector(5, (0, 0, 1, 1), (0.4, 0.3, 0.2, 0.1))
        with pytest.raises(RuntimeError):
            StrategyLearner(space).predict(fv)

    def test_accuracy_method(self, space, toy_dataset):
        learner = StrategyLearner(space, seed=0)
        learner.train(toy_dataset, iterations=100, seed=0)
        assert learner.accuracy(toy_dataset) > 0.8


class TestPersistence:
    def test_save_load_roundtrip(self, space, toy_dataset, tmp_path):
        learner = StrategyLearner(space, activation="relu", seed=0)
        learner.train(toy_dataset, iterations=20, seed=0)
        path = tmp_path / "learner.json"
        learner.save(path)
        clone = StrategyLearner.load(path)
        fv = FeatureVector(9, (1, 0, 1, 0), (0.3, 0.3, 0.2, 0.2))
        assert clone.predict_index(fv) == learner.predict_index(fv)
        assert clone.space.n_channels == 8
        assert clone.space.n_tenants == 4

    def test_untrained_save_rejected(self, space, tmp_path):
        with pytest.raises(RuntimeError):
            StrategyLearner(space).save(tmp_path / "x.json")

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "nope"}')
        with pytest.raises(ValueError):
            StrategyLearner.load(path)
