"""Replay buffer + guarded retraining (promote-or-rollback semantics)."""

import numpy as np
import pytest

from repro.core import (
    FeaturesCollector,
    ReplayBuffer,
    ReplayWindow,
    RetrainConfig,
    RetrainEvent,
    RetrainGovernor,
)
from repro.harness.driftlab import heuristic_allocator
from repro.ssd import SSDConfig
from repro.workloads import WorkloadSpec, synthesize_mix


def make_window(index, write_heavy, *, requests_per_window=60):
    """One replay window: a small seeded mix plus its observed features."""
    ratio = 0.9 if write_heavy else 0.1
    specs = [
        WorkloadSpec(name=f"t{i}", write_ratio=ratio, rate_rps=3000.0,
                     footprint_pages=2048)
        for i in range(4)
    ]
    mixed = synthesize_mix(specs, total_requests=requests_per_window,
                          seed=1000 + index)
    collector = FeaturesCollector(4, intensity_quantum=50.0)
    for req in mixed.requests:
        collector.observe(req)
    return ReplayWindow(
        time_us=float(index) * 10_000.0,
        features=collector.collect(),
        deployed="Shared",
        realised_mean_us=150.0,
        requests=tuple(mixed.requests),
    )


def fill_buffer(n, *, write_heavy=True, capacity=32):
    buffer = ReplayBuffer(capacity)
    for i in range(n):
        buffer.add(make_window(i, write_heavy))
    return buffer


class TestReplayBuffer:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ReplayBuffer(1)

    def test_fifo_eviction(self):
        buffer = ReplayBuffer(3)
        for i in range(5):
            buffer.add(make_window(i, True, requests_per_window=5))
        assert len(buffer) == 3
        assert [w.time_us for w in buffer.windows] == [
            20_000.0, 30_000.0, 40_000.0
        ]

    def test_split_sends_newest_to_holdback(self):
        buffer = fill_buffer(6)
        train, holdback = buffer.split(2)
        assert len(train) == 4 and len(holdback) == 2
        assert holdback[-1].time_us == max(w.time_us for w in buffer.windows)

    def test_split_clamps_holdback(self):
        buffer = fill_buffer(2)
        train, holdback = buffer.split(10)
        assert len(train) == 1 and len(holdback) == 1

    def test_split_empty_buffer(self):
        buffer = ReplayBuffer(4)
        train, holdback = buffer.split(2)
        assert train == [] and holdback == []


class TestRetrainConfig:
    @pytest.mark.parametrize("kwargs", [
        {"capacity": 1},
        {"holdback": 0},
        {"min_train_windows": 0},
        {"iterations": 0},
        {"batch_size": 0},
        {"interval_windows": 0},
        {"min_gap_windows": -1},
        {"promote_margin": -0.1},
        {"tie_epsilon": -1.0},
    ])
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetrainConfig(**kwargs)

    def test_event_round_trip(self):
        event = RetrainEvent(
            time_us=1.0, window_index=3, train_windows=5, holdback_windows=2,
            candidate_cost_us=10.0, incumbent_cost_us=12.0,
            outcome="promoted", reason="better",
        )
        assert event.promoted
        assert event.to_dict()["outcome"] == "promoted"
        rolled = RetrainEvent(
            time_us=1.0, window_index=3, train_windows=5, holdback_windows=2,
            candidate_cost_us=None, incumbent_cost_us=None,
            outcome="rolled-back", reason="unhealthy",
        )
        assert not rolled.promoted


class TestGovernorDue:
    def make(self, **kwargs):
        return RetrainGovernor(SSDConfig.small(), RetrainConfig(**kwargs))

    def test_drift_triggers(self):
        governor = self.make()
        assert governor.due(0, True)
        assert not governor.due(0, False)

    def test_interval_triggers_without_drift(self):
        governor = self.make(interval_windows=3, min_gap_windows=0)
        fired = [w for w in range(9) if governor.due(w, False)]
        assert fired == [2, 5, 8]

    def test_min_gap_suppresses(self):
        governor = self.make(min_gap_windows=3)
        governor._last_attempt_window = 4
        assert not governor.due(5, True)
        assert not governor.due(6, True)
        assert governor.due(7, True)


class TestGovernorAttempt:
    def attempt(self, buffer, allocator, **kwargs):
        kwargs.setdefault("min_train_windows", 3)
        kwargs.setdefault("holdback", 2)
        kwargs.setdefault("iterations", 10)
        governor = RetrainGovernor(SSDConfig.small(), RetrainConfig(**kwargs))
        return governor.attempt(
            allocator, buffer, time_us=99_000.0, window_index=9
        )

    def test_too_little_data_returns_none(self):
        allocator = heuristic_allocator()
        assert self.attempt(fill_buffer(2), allocator) is None

    def test_short_data_does_not_burn_the_gap(self):
        governor = RetrainGovernor(
            SSDConfig.small(),
            RetrainConfig(min_train_windows=3, holdback=2, min_gap_windows=5),
        )
        allocator = heuristic_allocator()
        assert governor.attempt(
            allocator, fill_buffer(2), time_us=0.0, window_index=0
        ) is None
        assert governor.due(1, True)  # a failed-for-data attempt is free

    def test_promotion_swaps_the_live_model(self):
        allocator = heuristic_allocator()
        incumbent = allocator.learner
        event = self.attempt(fill_buffer(8), allocator, promote_margin=10.0)
        assert event is not None and event.promoted
        assert allocator.learner is not incumbent

    def test_poisoned_candidate_is_rolled_back_untouched(self):
        allocator = heuristic_allocator()
        incumbent = allocator.learner
        probe = make_window(99, True).features
        before = allocator.learner.predict_index(probe)
        event = self.attempt(fill_buffer(8), allocator, poison=True)
        assert event is not None
        assert event.outcome == "rolled-back"
        assert "unhealthy" in event.reason
        assert event.candidate_cost_us is None
        assert allocator.learner is incumbent  # live model untouched
        assert allocator.learner.predict_index(probe) == before
        assert np.all(np.isfinite(allocator.learner.network.parameters()[0]))

    def test_rollback_on_worse_holdback_cost(self):
        # promote_margin=0 and a candidate fine-tuned on write-heavy
        # windows validated on the same distribution may still promote;
        # force a rollback by making the incumbent unbeatable: margin 0
        # and identical costs promote (<=), so poison-free rollback needs
        # a strictly worse candidate — assert the arbitration maths
        # instead via the recorded event costs.
        allocator = heuristic_allocator()
        event = self.attempt(fill_buffer(8), allocator)
        assert event is not None
        if event.promoted:
            assert event.candidate_cost_us <= event.incumbent_cost_us * 1.0 + 1e-9
        else:
            assert event.candidate_cost_us > event.incumbent_cost_us

    def test_attempt_is_deterministic(self):
        outcomes = []
        for _ in range(2):
            allocator = heuristic_allocator()
            event = self.attempt(fill_buffer(8), allocator)
            assert event is not None
            outcomes.append(event.to_dict())
        assert outcomes[0] == outcomes[1]

    def test_labels_are_memoised(self):
        buffer = fill_buffer(8)
        allocator = heuristic_allocator()
        self.attempt(buffer, allocator)
        labelled = [w for w in buffer.windows if w.label is not None]
        assert labelled  # training windows got labelled by the sweep
        for window in labelled:
            assert 0 <= window.label < len(allocator.space)


class TestLearnerClone:
    def test_clone_is_independent(self):
        allocator = heuristic_allocator()
        clone = allocator.learner.clone()
        probe = make_window(7, False).features
        assert clone.predict_index(probe) == allocator.learner.predict_index(probe)
        for param in clone.network.parameters():
            param.fill(0.0)
        # mutating the clone leaves the original intact
        assert any(
            np.any(p != 0.0) for p in allocator.learner.network.parameters()
        )

    def test_untrained_learner_refuses_to_clone(self):
        from repro.core import StrategyLearner, StrategySpace

        with pytest.raises(RuntimeError):
            StrategyLearner(StrategySpace(8, 4)).clone()

    def test_adopt_rejects_shape_mismatch(self):
        from repro.core import ChannelAllocator, StrategyLearner, StrategySpace

        allocator = heuristic_allocator()
        other = StrategyLearner(StrategySpace(4, 2))
        other._trained = True
        with pytest.raises(ValueError):
            allocator.adopt(other)
