"""Channel-allocation strategy space: counts, labels, channel sets."""

from hypothesis import given
from hypothesis import strategies as st
import pytest

from repro.core import Strategy, StrategyKind, StrategySpace, compositions, enumerate_strategies


class TestPaperCounts:
    def test_two_tenants_eight_strategies(self):
        """Section IV-C: 8 strategies for two tenants on 8 channels."""
        space = enumerate_strategies(8, 2)
        assert len(space) == 8
        labels = [s.label for s in space]
        assert labels == ["Shared", "Isolated", "7:1", "6:2", "5:3", "3:5", "2:6", "1:7"]

    def test_four_tenants_forty_two_strategies(self):
        """Section IV-C: 42 strategies for four tenants (8 + 34 extra)."""
        space = enumerate_strategies(8, 4)
        assert len(space) == 42
        labels = [s.label for s in space]
        assert labels[:8] == [
            "Shared", "Isolated", "7:1", "6:2", "5:3", "3:5", "2:6", "1:7",
        ]
        # The additional 34 are four-part compositions, 5:1:1:1 first.
        assert labels[8] == "5:1:1:1"
        assert "2:2:2:2" not in labels  # Isolated covers the equal split
        four_part = [s for s in space if s.kind is StrategyKind.PER_TENANT]
        assert len(four_part) == 34

    def test_compositions_count(self):
        assert len(compositions(8, 2)) == 7
        assert len(compositions(8, 4)) == 35  # C(7,3)

    @given(total=st.integers(2, 12), parts=st.integers(1, 4))
    def test_compositions_sum_and_positivity(self, total, parts):
        if parts > total:
            return
        for combo in compositions(total, parts):
            assert sum(combo) == total
            assert all(p >= 1 for p in combo)

    def test_compositions_are_unique(self):
        combos = compositions(8, 4)
        assert len(set(combos)) == len(combos)


class TestStrategyValidation:
    def test_shared_takes_no_parts(self):
        with pytest.raises(ValueError):
            Strategy(StrategyKind.SHARED, (4, 4))

    def test_two_part_needs_two(self):
        with pytest.raises(ValueError):
            Strategy(StrategyKind.TWO_PART, (8,))

    def test_parts_must_be_positive(self):
        with pytest.raises(ValueError):
            Strategy(StrategyKind.PER_TENANT, (8, 0, 0, 0))

    def test_labels(self):
        assert Strategy(StrategyKind.SHARED).label == "Shared"
        assert Strategy(StrategyKind.ISOLATED).label == "Isolated"
        assert Strategy(StrategyKind.TWO_PART, (7, 1)).label == "7:1"
        assert Strategy(StrategyKind.PER_TENANT, (4, 2, 1, 1)).label == "4:2:1:1"

    def test_simplified_label_collapses_permutations(self):
        """Figure 6's grouping rule."""
        for parts in [(5, 1, 1, 1), (1, 5, 1, 1), (1, 1, 5, 1), (1, 1, 1, 5)]:
            assert Strategy(StrategyKind.PER_TENANT, parts).simplified_label() == "5:1:1:1"
        assert Strategy(StrategyKind.TWO_PART, (1, 7)).simplified_label() == "1:7"


class TestChannelSets:
    def test_shared_gives_everyone_everything(self):
        sets = Strategy(StrategyKind.SHARED).channel_sets(8, [True, False, True, False])
        assert all(sets[w] == list(range(8)) for w in range(4))

    def test_isolated_equal_split(self):
        sets = Strategy(StrategyKind.ISOLATED).channel_sets(8, [True] * 4)
        assert [len(sets[w]) for w in range(4)] == [2, 2, 2, 2]
        combined = sorted(ch for chans in sets.values() for ch in chans)
        assert combined == list(range(8))

    def test_isolated_two_tenants(self):
        sets = Strategy(StrategyKind.ISOLATED).channel_sets(8, [True, False])
        assert sets[0] == [0, 1, 2, 3]
        assert sets[1] == [4, 5, 6, 7]

    def test_isolated_rejects_indivisible(self):
        with pytest.raises(ValueError):
            Strategy(StrategyKind.ISOLATED).channel_sets(8, [True, False, True])

    def test_two_part_groups_by_characteristic(self):
        """7:1 means 7 channels shared by the write-dominated tenants."""
        strategy = Strategy(StrategyKind.TWO_PART, (7, 1))
        sets = strategy.channel_sets(8, [True, False, True, False])
        assert sets[0] == sets[2] == list(range(7))
        assert sets[1] == sets[3] == [7]

    def test_two_part_all_same_group(self):
        strategy = Strategy(StrategyKind.TWO_PART, (6, 2))
        sets = strategy.channel_sets(8, [False, False])
        assert sets[0] == sets[1] == [6, 7]

    def test_two_part_must_cover_channels(self):
        with pytest.raises(ValueError):
            Strategy(StrategyKind.TWO_PART, (7, 1)).channel_sets(4, [True, False])

    def test_per_tenant_exclusive_ranges(self):
        strategy = Strategy(StrategyKind.PER_TENANT, (4, 2, 1, 1))
        sets = strategy.channel_sets(8, [True] * 4)
        assert sets[0] == [0, 1, 2, 3]
        assert sets[1] == [4, 5]
        assert sets[2] == [6]
        assert sets[3] == [7]
        combined = sorted(ch for chans in sets.values() for ch in chans)
        assert combined == list(range(8))

    def test_per_tenant_arity_must_match(self):
        strategy = Strategy(StrategyKind.PER_TENANT, (4, 2, 1, 1))
        with pytest.raises(ValueError):
            strategy.channel_sets(8, [True, False])

    def test_per_tenant_must_cover_channels(self):
        strategy = Strategy(StrategyKind.PER_TENANT, (4, 2, 1, 1))
        with pytest.raises(ValueError):
            strategy.channel_sets(10, [True] * 4)

    @given(idx=st.integers(0, 41))
    def test_every_strategy_yields_valid_sets(self, idx):
        """Every strategy's sets stay in range and never leave a tenant empty."""
        space = StrategySpace(8, 4)
        sets = space[idx].channel_sets(8, [True, False, False, True])
        assert set(sets) == {0, 1, 2, 3}
        for chans in sets.values():
            assert chans, "tenant left with no channels"
            assert all(0 <= ch < 8 for ch in chans)


class TestStrategySpace:
    def test_indexing_roundtrip(self):
        space = StrategySpace(8, 4)
        for i, strategy in enumerate(space):
            assert space.index_of(strategy) == i
            assert space[i] == strategy

    def test_by_label(self):
        space = StrategySpace(8, 4)
        assert space.by_label("5:1:1:1").parts == (5, 1, 1, 1)
        with pytest.raises(ValueError):
            space.by_label("9:9")

    def test_shared_isolated_shortcuts(self):
        space = StrategySpace(8, 2)
        assert space.shared.kind is StrategyKind.SHARED
        assert space.isolated.kind is StrategyKind.ISOLATED

    def test_index_of_foreign_strategy_rejected(self):
        space = StrategySpace(8, 2)
        with pytest.raises(ValueError):
            space.index_of(Strategy(StrategyKind.PER_TENANT, (5, 1, 1, 1)))

    def test_describe(self):
        assert "42 strategies" in StrategySpace(8, 4).describe()

    def test_enumerate_validation(self):
        with pytest.raises(ValueError):
            enumerate_strategies(1, 2)
        with pytest.raises(ValueError):
            enumerate_strategies(8, 1)

    def test_other_channel_counts(self):
        # 4 channels, 2 tenants: Shared, Isolated, 3:1, 1:3.
        space = enumerate_strategies(4, 2)
        assert [s.label for s in space] == ["Shared", "Isolated", "3:1", "1:3"]
