"""Verified allocation: top-k replay rescues bad argmax picks."""

import numpy as np
import pytest

from repro.core import (
    ChannelAllocator,
    Dataset,
    FeatureVector,
    SSDKeeper,
    StrategyLearner,
    StrategySpace,
    verified_allocate,
)
from repro.ssd import SSDConfig
from repro.workloads import WorkloadSpec, synthesize_mix


def biased_allocator(bad_label: str, good_label: str) -> ChannelAllocator:
    """A learner whose argmax is always ``bad_label``; ``good_label`` is the
    runner-up, so verification can rescue the decision from its top-2."""
    space = StrategySpace(8, 4)
    rng = np.random.default_rng(0)
    rows = []
    labels = []
    bad = space.index_of(space.by_label(bad_label))
    good = space.index_of(space.by_label(good_label))
    for i in range(160):
        fv = FeatureVector(
            int(rng.integers(0, 20)),
            tuple(int(rng.integers(0, 2)) for _ in range(4)),
            tuple(rng.dirichlet(np.ones(4))),
        )
        rows.append(fv.to_array())
        labels.append(bad if i % 5 else good)  # bad dominates, good is 2nd
    ds = Dataset(features=np.vstack(rows), labels=np.array(labels), n_classes=42)
    learner = StrategyLearner(space, seed=0)
    learner.train(ds, iterations=60, seed=0)
    return ChannelAllocator(learner)


def read_heavy_window(cfg, total=900):
    """A mix whose reads are crushed by confining writes wrongly: heavy
    writers + heavy readers, where the bad strategy starves one side."""
    specs = [
        WorkloadSpec(name=f"t{i}", write_ratio=1.0 if i < 2 else 0.0,
                     rate_rps=12_000, footprint_pages=4096)
        for i in range(4)
    ]
    return synthesize_mix(specs, total_requests=total, seed=9).requests


class TestTopK:
    def test_top_k_order_and_size(self):
        allocator = biased_allocator("1:7", "Shared")
        fv = FeatureVector(10, (0, 0, 1, 1), (0.5, 0.2, 0.2, 0.1))
        top = allocator.top_k(fv, 3)
        assert len(top) == 3
        assert top[0].label == "1:7"  # the biased argmax
        labels = [s.label for s in top]
        assert "Shared" in labels     # runner-up present

    def test_top_k_validation(self):
        allocator = biased_allocator("1:7", "Shared")
        fv = FeatureVector(10, (0, 0, 1, 1), (0.5, 0.2, 0.2, 0.1))
        with pytest.raises(ValueError):
            allocator.top_k(fv, 0)

    def test_top_k_clamped_to_space(self):
        allocator = biased_allocator("1:7", "Shared")
        fv = FeatureVector(10, (0, 0, 1, 1), (0.5, 0.2, 0.2, 0.1))
        assert len(allocator.top_k(fv, 999)) == 42


class TestVerifiedAllocate:
    def test_rescues_catastrophic_argmax(self):
        """The biased model says 1:7 (1 channel for two heavy writers —
        catastrophic); replaying the window must reject it."""
        config = SSDConfig.small()
        allocator = biased_allocator("1:7", "Shared")
        window = read_heavy_window(config)
        fv = FeatureVector(15, (0, 0, 1, 1), (0.25, 0.25, 0.25, 0.25))
        assert allocator.allocate(fv).label == "1:7"  # unverified pick
        verified = verified_allocate(
            allocator, fv, window, config, top_k=3
        )
        assert verified.label != "1:7"

    def test_empty_window_falls_back_to_argmax(self):
        config = SSDConfig.small()
        allocator = biased_allocator("1:7", "Shared")
        fv = FeatureVector(15, (0, 0, 1, 1), (0.25, 0.25, 0.25, 0.25))
        assert verified_allocate(allocator, fv, [], config).label == "1:7"

    def test_decision_logged(self):
        config = SSDConfig.small()
        allocator = biased_allocator("1:7", "Shared")
        window = read_heavy_window(config, total=300)
        fv = FeatureVector(15, (0, 0, 1, 1), (0.25, 0.25, 0.25, 0.25))
        n_before = len(allocator.decisions)
        verified_allocate(allocator, fv, window, config, top_k=2)
        assert len(allocator.decisions) == n_before + 1


class TestKeeperIntegration:
    def test_keeper_with_verification_avoids_bad_switch(self):
        config = SSDConfig.small()
        allocator = biased_allocator("1:7", "Shared")
        keeper = SSDKeeper(
            allocator,
            config,
            collect_window_us=25_000.0,
            intensity_quantum=50.0,
            verify_top_k=3,
        )
        run = keeper.run(list(read_heavy_window(config, total=1200)))
        assert run.switched
        assert run.strategy.label != "1:7"

    def test_keeper_validation(self):
        config = SSDConfig.small()
        allocator = biased_allocator("1:7", "Shared")
        with pytest.raises(ValueError):
            SSDKeeper(
                allocator, config,
                collect_window_us=1000.0, intensity_quantum=1.0,
                verify_top_k=-1,
            )
