"""Ablation entry points at micro scale."""

import dataclasses

import numpy as np
import pytest

from repro.harness import ArtifactCache, Scale, ablation_scheduling
from repro.harness.ablations import _spearman


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


@pytest.fixture(scope="module")
def micro():
    return dataclasses.replace(Scale.smoke(), fidelity_mixes=2, mix_requests=300)


class TestSpearman:
    def test_perfect_correlation(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert _spearman(a, a * 10 + 5) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert _spearman(a, -a) == pytest.approx(-1.0)

    def test_constant_input(self):
        a = np.ones(4)
        assert _spearman(a, a) == 1.0

    def test_rank_based_not_value_based(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1.0, 100.0, 101.0])  # same ranks, wild values
        assert _spearman(a, b) == pytest.approx(1.0)


class TestSchedulingAblation:
    def test_runs_and_reports(self, micro, cache):
        data = ablation_scheduling(micro, cache=cache)
        assert len(data["per_mix"]) >= 3
        assert data["mean_read_speedup"] >= 0.9
        assert data["mean_write_slowdown"] >= 0.9
        for row in data["per_mix"]:
            assert row["fifo_read_us"] > 0
            assert row["prio_write_us"] > 0

    def test_cached(self, micro, cache):
        a = ablation_scheduling(micro, cache=cache)
        b = ablation_scheduling(micro, cache=cache)
        assert a == b
