"""Benchmark harness: suite runs, schema, baseline comparison, CLI."""

import copy
import json

import pytest

from repro.harness.bench import (
    SCENARIOS,
    SCHEMA_VERSION,
    compare,
    main,
    run_bench,
    run_scenario,
    write_bench,
)


@pytest.fixture(scope="module")
def quick_doc():
    return run_bench(quick=True, scenarios=["mix2_shared", "fastmodel"])


def make_doc(wall_s=0.5, rps=1000.0, read_us=100.0, *, quick=True):
    return {
        "schema_version": SCHEMA_VERSION,
        "created": "2026-01-01T00:00:00Z",
        "quick": quick,
        "repeat": 1,
        "python": "3.11.0",
        "platform": "test-host",
        "scenarios": {
            "mix2_shared": {
                "kind": "simulator",
                "requests": 600,
                "metrics": {
                    "wall_s": wall_s,
                    "requests_per_s": rps,
                    "sim_mean_read_us": read_us,
                },
            }
        },
    }


class TestRunScenario:
    def test_simulator_scenario_records_attribution(self, quick_doc):
        entry = quick_doc["scenarios"]["mix2_shared"]
        assert entry["kind"] == "simulator"
        assert entry["requests"] == 600
        m = entry["metrics"]
        assert m["wall_s"] > 0
        assert m["requests_per_s"] > 0
        assert m["sim_mean_read_us"] > 0
        attr = entry["attribution"]
        assert attr["requests"] == 600
        assert sum(attr["phase_fractions"].values()) == pytest.approx(1.0)

    def test_fastmodel_scenario_has_no_attribution(self, quick_doc):
        entry = quick_doc["scenarios"]["fastmodel"]
        assert entry["kind"] == "fastmodel"
        assert "attribution" not in entry

    def test_simulated_metrics_are_deterministic(self):
        a = run_scenario("mix2_shared", quick=True)
        b = run_scenario("mix2_shared", quick=True, repeat=2)
        for name in ("sim_mean_read_us", "sim_mean_write_us",
                     "sim_total_latency_us"):
            assert a["metrics"][name] == b["metrics"][name]

    def test_gc_heavy_scenario_stalls_on_gc(self):
        entry = run_scenario("gc_heavy", quick=True)
        assert entry["attribution"]["phase_totals_us"]["gc_stall_us"] > 0

    def test_faulted_scenario_pays_ecc_retries(self):
        entry = run_scenario("faulted", quick=True)
        assert entry["attribution"]["phase_totals_us"]["ecc_retry_us"] > 0


class TestRunBench:
    def test_document_is_schema_versioned(self, quick_doc):
        assert quick_doc["schema_version"] == SCHEMA_VERSION
        assert quick_doc["quick"] is True
        assert set(quick_doc["scenarios"]) == {"mix2_shared", "fastmodel"}

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            run_bench(quick=True, scenarios=["nope"])

    def test_scenario_registry(self):
        assert set(SCENARIOS) == {
            "mix2_shared", "mix4_split", "gc_heavy", "faulted", "fastmodel",
            "drift_hotspot", "phase_change", "noisy_neighbor",
        }


class TestWriteBench:
    def test_writes_timestamped_json(self, quick_doc, tmp_path):
        path = write_bench(quick_doc, tmp_path / "out")
        assert path.name.startswith("BENCH_")
        assert path.name.endswith(".json")
        back = json.loads(path.read_text())
        assert back["schema_version"] == SCHEMA_VERSION
        assert back["scenarios"]["mix2_shared"]["requests"] == 600


class TestCompare:
    def test_identical_docs_pass(self):
        doc = make_doc()
        assert compare(doc, doc, max_regression_pct=30.0) == []

    def test_wall_clock_regression_detected(self):
        base = make_doc(wall_s=0.5)
        cur = make_doc(wall_s=0.8)  # +60%
        regs = compare(cur, base, max_regression_pct=30.0)
        assert [r.metric for r in regs] == ["wall_s"]
        assert regs[0].change_pct == pytest.approx(60.0)
        assert "mix2_shared.wall_s" in regs[0].describe()

    def test_throughput_regression_is_direction_aware(self):
        base = make_doc(rps=1000.0)
        # throughput going UP is an improvement, not a regression
        assert compare(make_doc(rps=2000.0), base, max_regression_pct=30.0) == []
        regs = compare(make_doc(rps=500.0), base, max_regression_pct=30.0)
        assert [r.metric for r in regs] == ["requests_per_s"]

    def test_wall_clock_improvement_passes(self):
        base = make_doc(wall_s=0.5)
        assert compare(make_doc(wall_s=0.1), base, max_regression_pct=30.0) == []

    def test_deterministic_metric_regression_detected(self):
        base = make_doc(read_us=100.0)
        regs = compare(make_doc(read_us=150.0), base, max_regression_pct=30.0)
        assert [r.metric for r in regs] == ["sim_mean_read_us"]

    def test_sub_floor_wall_metrics_are_skipped(self):
        # both runs under the noise floor: wall-clock percent thresholds
        # are meaningless, but deterministic metrics still compare
        base = make_doc(wall_s=0.004, rps=150000.0)
        cur = make_doc(wall_s=0.016, rps=37000.0)  # 4x wall noise
        assert compare(cur, base, max_regression_pct=30.0) == []
        cur = make_doc(wall_s=0.016, rps=37000.0, read_us=200.0)
        regs = compare(cur, base, max_regression_pct=30.0)
        assert [r.metric for r in regs] == ["sim_mean_read_us"]

    def test_schema_mismatch_refused(self):
        base = make_doc()
        bad = copy.deepcopy(base)
        bad["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            compare(bad, base, max_regression_pct=30.0)
        with pytest.raises(ValueError, match="schema_version"):
            compare(base, bad, max_regression_pct=30.0)

    def test_quick_full_mismatch_refused(self):
        with pytest.raises(ValueError, match="quick"):
            compare(make_doc(quick=True), make_doc(quick=False),
                    max_regression_pct=30.0)

    def test_negative_threshold_rejected(self):
        doc = make_doc()
        with pytest.raises(ValueError):
            compare(doc, doc, max_regression_pct=-1.0)

    def test_new_scenarios_and_metrics_are_skipped(self):
        base = make_doc()
        cur = copy.deepcopy(base)
        cur["scenarios"]["brand_new"] = {
            "metrics": {"wall_s": 99.0}
        }
        cur["scenarios"]["mix2_shared"]["metrics"]["novel_metric"] = 1.0
        assert compare(cur, base, max_regression_pct=30.0) == []


class TestCli:
    def run_main(self, args, capsys):
        code = main(args)
        out = capsys.readouterr()
        return code, out.out, out.err

    def test_run_and_write(self, tmp_path, capsys):
        code, out, _ = self.run_main(
            ["--quick", "--scenario", "mix2_shared", "--out", str(tmp_path)],
            capsys,
        )
        assert code == 0
        assert "mix2_shared" in out
        files = list(tmp_path.glob("BENCH_*.json"))
        assert len(files) == 1

    def test_json_output(self, tmp_path, capsys):
        code, out, _ = self.run_main(
            ["--quick", "--scenario", "fastmodel", "--json",
             "--out", str(tmp_path)],
            capsys,
        )
        assert code == 0
        doc = json.loads(out[: out.rindex("}") + 1])
        assert doc["schema_version"] == SCHEMA_VERSION

    def test_baseline_pass_and_regression_exits(self, tmp_path, capsys):
        # write a baseline from a real quick run, then compare against it
        code, _, _ = self.run_main(
            ["--quick", "--scenario", "mix2_shared", "--out", str(tmp_path)],
            capsys,
        )
        assert code == 0
        baseline_path = next(tmp_path.glob("BENCH_*.json"))
        code, out, _ = self.run_main(
            ["--quick", "--scenario", "mix2_shared", "--no-write",
             "--baseline", str(baseline_path), "--max-regression", "500"],
            capsys,
        )
        assert code == 0
        assert "baseline check passed" in out
        # poison the baseline's deterministic metric: must exit 1
        doc = json.loads(baseline_path.read_text())
        doc["scenarios"]["mix2_shared"]["metrics"]["sim_mean_read_us"] /= 10.0
        baseline_path.write_text(json.dumps(doc))
        code, _, err = self.run_main(
            ["--quick", "--scenario", "mix2_shared", "--no-write",
             "--baseline", str(baseline_path), "--max-regression", "500"],
            capsys,
        )
        assert code == 1
        assert "REGRESSION" in err
        assert "sim_mean_read_us" in err

    def test_regression_emits_forensics_bundle(self, tmp_path, capsys):
        from repro.obs.diff import load_diff

        code, _, _ = self.run_main(
            ["--quick", "--scenario", "mix2_shared", "--out", str(tmp_path)],
            capsys,
        )
        assert code == 0
        baseline_path = next(tmp_path.glob("BENCH_*.json"))
        doc = json.loads(baseline_path.read_text())
        doc["scenarios"]["mix2_shared"]["metrics"]["sim_mean_read_us"] /= 10.0
        baseline_path.write_text(json.dumps(doc))
        code, _, err = self.run_main(
            ["--quick", "--scenario", "mix2_shared", "--no-write",
             "--out", str(tmp_path), "--baseline", str(baseline_path),
             "--max-regression", "500"],
            capsys,
        )
        assert code == 1
        assert "forensics bundle" in err
        report = load_diff(
            json.loads((tmp_path / "diff_report.json").read_text())
        )
        assert report["kind"] == "bench"
        entry = report["sections"]["bench"]["scenarios"]["mix2_shared"]
        assert entry["metrics"]["sim_mean_read_us"]["classification"] == (
            "regressed"
        )
        # the regression ships with its attribution-delta waterfall
        assert "waterfall" in entry

    def test_update_baseline_writes_instead_of_comparing(self, tmp_path,
                                                         capsys):
        target = tmp_path / "nested" / "base.json"
        # poison the target first: --update-baseline must overwrite it
        # without ever comparing against the stale contents
        target.parent.mkdir()
        target.write_text(json.dumps({"schema_version": 99}))
        code, out, err = self.run_main(
            ["--quick", "--scenario", "fastmodel", "--no-write",
             "--update-baseline", "--baseline", str(target)],
            capsys,
        )
        assert code == 0
        assert f"updated baseline {target}" in out
        assert "REGRESSION" not in err
        doc = json.loads(target.read_text())
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["quick"] is True
        assert "fastmodel" in doc["scenarios"]
        # the refreshed baseline round-trips through a normal check
        code, out, _ = self.run_main(
            ["--quick", "--scenario", "fastmodel", "--no-write",
             "--baseline", str(target), "--max-regression", "500"],
            capsys,
        )
        assert code == 0
        assert "baseline check passed" in out

    def test_missing_baseline_exits_2(self, capsys):
        code, _, err = self.run_main(
            ["--quick", "--no-write", "--baseline", "/nonexistent.json"],
            capsys,
        )
        assert code == 2
        assert "cannot read baseline" in err

    def test_incomparable_baseline_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema_version": 99, "scenarios": {}}))
        code, _, err = self.run_main(
            ["--quick", "--scenario", "fastmodel", "--no-write",
             "--baseline", str(bad)],
            capsys,
        )
        assert code == 2
        assert "schema_version" in err

    def test_unknown_scenario_exits_2(self, capsys):
        code, _, err = self.run_main(
            ["--quick", "--scenario", "nope", "--no-write"], capsys
        )
        assert code == 2
        assert "unknown scenario" in err

    def test_repro_cli_delegates_bench(self, tmp_path, capsys):
        from repro.harness.cli import main as repro_main

        code = repro_main(
            ["bench", "--quick", "--scenario", "fastmodel",
             "--out", str(tmp_path)]
        )
        assert code == 0
        assert list(tmp_path.glob("BENCH_*.json"))


class TestCommittedBaseline:
    def test_repo_baseline_is_current_schema(self):
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / "benchmarks/baseline.json"
        doc = json.loads(path.read_text())
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["quick"] is True
        assert set(doc["scenarios"]) == set(SCENARIOS)


class TestSloArming:
    TIGHT_SPEC = {
        "window_us": 500.0,
        "tenants": {"0": {"write_p95_us": 200.0}},
        "gc_stall_fraction": 0.05,
        "burn": {
            "fast": {"windows": 2, "warn_burn": 1.5, "page_burn": 3.0},
            "slow": {"windows": 6, "warn_burn": 1.0, "page_burn": 2.0},
        },
    }

    def test_tight_slo_pages_and_dumps_bundle(self, tmp_path):
        entry = run_scenario("gc_heavy", quick=True, slo=self.TIGHT_SPEC,
                             flight_dir=tmp_path)
        slo = entry["slo"]
        assert slo["windows"] > 0
        assert slo["page_alerts"] >= 1
        assert len(slo["bundles"]) == 1
        manifest = json.loads(
            (tmp_path / "gc_heavy" / "bundle-00-slo-page" /
             "manifest.json").read_text()
        )
        assert manifest["trigger"] == "slo-page"
        assert manifest["replay"]["command"] == (
            "python -m repro bench --scenario gc_heavy --quick"
        )
        assert manifest["context"]["scenario"] == "gc_heavy"

    def test_fastmodel_ignores_slo(self):
        entry = run_scenario("fastmodel", quick=True, slo=self.TIGHT_SPEC)
        assert "slo" not in entry

    def test_metrics_unchanged_by_slo_arming(self):
        plain = run_scenario("gc_heavy", quick=True)
        armed = run_scenario("gc_heavy", quick=True, slo=self.TIGHT_SPEC)
        sim_keys = [k for k in plain["metrics"] if k.startswith("sim_")]
        assert sim_keys
        for key in sim_keys:
            assert armed["metrics"][key] == plain["metrics"][key]

    def test_unknown_tenant_rejected_against_scenario(self):
        from repro.obs import SloSpecError

        with pytest.raises(SloSpecError):
            run_scenario("mix2_shared", quick=True, slo={
                "window_us": 500.0,
                "tenants": {"9": {"read_p95_us": 1000.0}},
            })


class TestTrajectory:
    def write_run(self, tmp_path, created, *, quick=False, wall_s=0.5,
                  read_us=100.0, scenarios=("mix2_shared",)):
        doc = {
            "schema_version": SCHEMA_VERSION,
            "created": created,
            "quick": quick,
            "repeat": 1,
            "python": "3.11.0",
            "platform": "test-host",
            "scenarios": {
                name: {
                    "kind": "simulator",
                    "requests": 600,
                    "metrics": {
                        "wall_s": wall_s,
                        "requests_per_s": 1000.0,
                        "sim_mean_read_us": read_us,
                        "sim_mean_write_us": read_us * 2,
                        "sim_total_latency_us": read_us * 1000,
                    },
                }
                for name in scenarios
            },
        }
        stamp = created.replace(":", "").replace("-", "")
        path = tmp_path / f"BENCH_{stamp}.json"
        path.write_text(json.dumps(doc))
        return path

    def test_loads_in_timestamp_order(self, tmp_path):
        from repro.harness.bench import load_trajectory

        self.write_run(tmp_path, "2026-01-02T00:00:00Z")
        self.write_run(tmp_path, "2026-01-01T00:00:00Z")
        runs = load_trajectory(tmp_path)
        assert [r["doc"]["created"] for r in runs] == [
            "2026-01-01T00:00:00Z", "2026-01-02T00:00:00Z",
        ]

    def test_skips_older_schema_file_with_warning(self, tmp_path):
        from repro.harness.bench import load_trajectory

        self.write_run(tmp_path, "2026-01-01T00:00:00Z")
        (tmp_path / "BENCH_bad.json").write_text('{"schema_version": 99}')
        with pytest.warns(UserWarning, match="skipping BENCH_bad.json"):
            runs = load_trajectory(tmp_path)
        assert [r["doc"]["created"] for r in runs] == ["2026-01-01T00:00:00Z"]

    def test_skips_invoke_on_skip_callback_with_reason(self, tmp_path):
        from repro.harness.bench import load_trajectory

        self.write_run(tmp_path, "2026-01-01T00:00:00Z")
        (tmp_path / "BENCH_old.json").write_text('{"schema_version": 99}')
        (tmp_path / "BENCH_trunc.json").write_text("{not json")
        skipped = []
        runs = load_trajectory(
            tmp_path, on_skip=lambda name, reason: skipped.append((name, reason))
        )
        assert len(runs) == 1
        assert sorted(name for name, _ in skipped) == [
            "BENCH_old.json", "BENCH_trunc.json",
        ]
        reasons = dict(skipped)
        assert "schema_version" in reasons["BENCH_old.json"]

    def test_skips_document_without_created_stamp(self, tmp_path):
        from repro.harness.bench import load_trajectory

        path = self.write_run(tmp_path, "2026-01-01T00:00:00Z")
        doc = json.loads(path.read_text())
        doc["created"] = None
        (tmp_path / "BENCH_nostamp.json").write_text(json.dumps(doc))
        skipped = []
        runs = load_trajectory(
            tmp_path, on_skip=lambda name, reason: skipped.append(reason)
        )
        assert len(runs) == 1
        assert "created" in skipped[0]

    def test_cli_trajectory_reports_skips_on_stderr(self, tmp_path, capsys):
        self.write_run(tmp_path, "2026-01-01T00:00:00Z")
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        code = main(["--trajectory", str(tmp_path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "skipping BENCH_bad.json" in captured.err
        assert "BENCH_" in captured.out

    def test_format_shows_deltas_between_consecutive_runs(self, tmp_path):
        from repro.harness.bench import format_trajectory, load_trajectory

        self.write_run(tmp_path, "2026-01-01T00:00:00Z", wall_s=1.0,
                       read_us=100.0)
        self.write_run(tmp_path, "2026-01-02T00:00:00Z", wall_s=0.5,
                       read_us=110.0)
        text = format_trajectory(load_trajectory(tmp_path))
        assert "-50.0%" in text     # wall-clock halved
        assert "+10.0%" in text     # read latency drifted up
        assert "mix2_shared" in text

    def test_format_marks_incomparable_sizes(self, tmp_path):
        from repro.harness.bench import format_trajectory, load_trajectory

        self.write_run(tmp_path, "2026-01-01T00:00:00Z", quick=True)
        self.write_run(tmp_path, "2026-01-02T00:00:00Z", quick=False)
        text = format_trajectory(load_trajectory(tmp_path))
        assert "incomparable" in text

    def test_format_lists_new_scenarios(self, tmp_path):
        from repro.harness.bench import format_trajectory, load_trajectory

        self.write_run(tmp_path, "2026-01-01T00:00:00Z")
        self.write_run(tmp_path, "2026-01-02T00:00:00Z",
                       scenarios=("mix2_shared", "gc_heavy"))
        text = format_trajectory(load_trajectory(tmp_path))
        assert "new scenarios: gc_heavy" in text

    def test_empty_directory(self, tmp_path):
        from repro.harness.bench import format_trajectory, load_trajectory

        assert format_trajectory(load_trajectory(tmp_path)) == (
            "no BENCH_*.json files found"
        )

    def test_cli_trajectory_flag(self, tmp_path, capsys):
        self.write_run(tmp_path, "2026-01-01T00:00:00Z")
        self.write_run(tmp_path, "2026-01-02T00:00:00Z")
        code = main(["--trajectory", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "BENCH_" in out and "->" in out

    def test_cli_trajectory_missing_dir_is_empty(self, tmp_path, capsys):
        code = main(["--trajectory", str(tmp_path / "nope")])
        out = capsys.readouterr().out
        assert code == 0
        assert "no BENCH_*.json files found" in out

    def test_committed_benchmarks_stay_loadable(self):
        """The repo's own benchmarks/ directory must always parse."""
        from pathlib import Path

        from repro.harness.bench import load_trajectory

        bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
        runs = load_trajectory(bench_dir)
        assert len(runs) >= 2  # history exists, in order
        created = [r["doc"]["created"] for r in runs]
        assert created == sorted(created)
