"""Artifact cache semantics."""

import json

import pytest

from repro.harness import ArtifactCache


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


class TestGetOrBuild:
    def test_builds_once(self, cache):
        calls = []

        def fetch():
            return cache.get_or_build_json(
                "thing", {"a": 1}, build=lambda: calls.append(1) or {"x": 42}
            )

        assert fetch() == {"x": 42}
        assert fetch() == {"x": 42}
        assert len(calls) == 1

    def test_different_params_rebuild(self, cache):
        calls = []

        def build():
            calls.append(1)
            return {"n": len(calls)}

        a = cache.get_or_build_json("thing", {"a": 1}, build=build)
        b = cache.get_or_build_json("thing", {"a": 2}, build=build)
        assert a != b
        assert len(calls) == 2

    def test_corrupt_entry_rebuilds(self, cache):
        doc = cache.get_or_build_json("thing", {"a": 1}, build=lambda: {"ok": True})
        path = cache.path_for("thing", {"a": 1}, ".json")
        path.write_text("{not json")
        doc2 = cache.get_or_build_json("thing", {"a": 1}, build=lambda: {"ok": True})
        assert doc == doc2
        # The rebuilt entry is valid on disk again.
        assert json.loads(path.read_text()) == {"ok": True}

    def test_binary_artifacts_with_suffix(self, cache, tmp_path):
        def save(data, path):
            path.write_bytes(data)

        def load(path):
            return path.read_bytes()

        out = cache.get_or_build(
            "blob", {"k": 1}, build=lambda: b"abc", save=save, load=load, suffix=".bin"
        )
        assert out == b"abc"
        assert cache.path_for("blob", {"k": 1}, ".bin").exists()

    def test_param_order_does_not_matter(self, cache):
        a = cache.path_for("x", {"a": 1, "b": 2}, ".json")
        b = cache.path_for("x", {"b": 2, "a": 1}, ".json")
        assert a == b


class TestClear:
    def test_clear_by_name(self, cache):
        cache.get_or_build_json("a", {}, build=lambda: {})
        cache.get_or_build_json("b", {}, build=lambda: {})
        assert cache.clear("a") == 1
        assert cache.clear() == 1

    def test_clear_empty(self, tmp_path):
        assert ArtifactCache(tmp_path / "nothing").clear() == 0
