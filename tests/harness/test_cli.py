"""CLI surface (cheap commands only; heavy ones are covered by benches)."""

import pytest

from repro.harness.cli import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "SSDKeeper" in out
        assert "42 strategies" in out

    def test_tab2(self, capsys):
        assert main(["tab2"]) == 0
        out = capsys.readouterr().out
        assert "mds_0" in out
        assert "Table II" in out

    def test_scale_flag(self, capsys):
        assert main(["info", "--scale", "smoke"]) == 0
        assert "scale: smoke" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["info", "--scale", "galactic"])
