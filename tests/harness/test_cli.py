"""CLI surface (cheap commands only; heavy ones are covered by benches)."""

import pytest

from repro.harness.cli import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "SSDKeeper" in out
        assert "42 strategies" in out

    def test_tab2(self, capsys):
        assert main(["tab2"]) == 0
        out = capsys.readouterr().out
        assert "mds_0" in out
        assert "Table II" in out

    def test_scale_flag(self, capsys):
        assert main(["info", "--scale", "smoke"]) == 0
        assert "scale: smoke" in capsys.readouterr().out

    def test_stats_reports_metrics(self, capsys, tmp_path):
        jsonl = tmp_path / "trace.jsonl"
        chrome = tmp_path / "trace.chrome.json"
        metrics = tmp_path / "metrics.json"
        assert main([
            "stats", "--scale", "smoke",
            "--trace", str(jsonl),
            "--chrome-trace", str(chrome),
            "--metrics-out", str(metrics),
        ]) == 0
        out = capsys.readouterr().out
        assert "counters & gauges" in out
        assert "sim.requests" in out
        assert "latency histograms" in out
        assert "latency attribution over" in out
        assert jsonl.read_text().count("\n") > 0
        assert "traceEvents" in chrome.read_text()
        assert "utilization" in metrics.read_text()

    def test_stats_json_mode(self, capsys):
        import json

        assert main(["stats", "--scale", "smoke", "--json",
                     "--utilization-interval", "0"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out[out.index("{"):])
        assert doc["counters"]["sim.requests"] > 0
        assert "utilization" not in doc
        attr = doc["attribution"]
        assert attr["requests"] > 0
        assert abs(sum(attr["phase_fractions"].values()) - 1.0) < 1e-6

    def test_faults_json_reports_fault_section(self, capsys):
        import json

        assert main(["faults", "--scale", "smoke", "--json",
                     "--utilization-interval", "0",
                     "--read-ber", "0.05"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out[out.index("{"):])
        assert any(k.startswith("faults.") for k in doc["faults"])
        assert doc["attribution"]["requests"] > 0

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["info", "--scale", "galactic"])


class TestTelemetryAndSlo:
    def test_stats_writes_telemetry_and_openmetrics(self, capsys, tmp_path):
        import json

        jsonl = tmp_path / "run.jsonl"
        om = tmp_path / "metrics.om"
        assert main([
            "stats", "--scale", "smoke",
            "--telemetry-out", str(jsonl),
            "--openmetrics", str(om),
            "--utilization-interval", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "telemetry" in out
        lines = jsonl.read_text().strip().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        assert header["windows"] == len(lines) - 1 > 0
        exposition = om.read_text()
        assert exposition.endswith("# EOF\n")
        assert "sim_requests_total" in exposition

    def test_stats_with_slo_reports_alert_rollup(self, capsys):
        import json
        from pathlib import Path

        spec = Path(__file__).resolve().parents[2] / "examples" / "slo.json"
        assert main([
            "stats", "--scale", "smoke", "--json",
            "--slo", str(spec),
            "--utilization-interval", "0",
        ]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out[out.index("{"):])
        assert doc["alerts"] == []  # the committed spec holds on seeded runs
        assert doc["slo"]["windows"] > 0
        assert doc["slo"]["page_alerts"] == 0

    def test_invalid_slo_spec_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"window_us": -1}')
        with pytest.raises(SystemExit):
            main(["stats", "--scale", "smoke", "--slo", str(bad)])

    def test_unknown_tenant_in_spec_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(
            '{"window_us": 500.0, "tenants": {"9": {"read_p95_us": 1000.0}}}'
        )
        with pytest.raises(SystemExit):
            main(["stats", "--scale", "smoke", "--slo", str(bad)])

    def test_non_positive_telemetry_interval_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["stats", "--scale", "smoke",
                  "--telemetry-out", str(tmp_path / "t.jsonl"),
                  "--telemetry-interval", "0"])
