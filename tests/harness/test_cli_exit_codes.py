"""CLI exit-code contract: 0 success, 1 regression/alert, 2 usage error.

Every ``python -m repro`` subcommand shares the same three-way contract;
CI scripts and the flight recorder's replay commands depend on it, so it
is pinned here across the whole surface in one parametrized sweep.
"""

import json

import pytest

from repro.harness.cli import main as repro_main


def run_cli(argv):
    """Invoke the CLI, normalising argparse's SystemExit into a code."""
    try:
        return repro_main(argv)
    except SystemExit as exc:
        return exc.code


# ----------------------------------------------------------------------
# Usage errors: every subcommand must exit 2, never raise through
# ----------------------------------------------------------------------
USAGE_ERRORS = {
    "unknown-command": ["nonsense"],
    "bench-repeat-zero": ["bench", "--repeat", "0"],
    "bench-unknown-scenario": ["bench", "--quick", "--scenario", "nope",
                               "--no-write"],
    "explain-top-zero": ["explain", "--top", "0"],
    "explain-unknown-scenario": ["explain", "--scenario", "nope", "--quick"],
    "profile-top-zero": ["profile", "--top", "0"],
    "drift-unknown-scenario": ["drift", "--scenario", "nope"],
    "fleet-devices-zero": ["fleet", "--devices", "0"],
    "fleet-tenants-zero": ["fleet", "--tenants", "0"],
    "diff-no-mode": ["diff"],
    "diff-bad-scale": ["diff", "run", "--quick", "--scale", "bus_bandwidth"],
    "diff-unknown-knob": ["diff", "run", "--quick",
                          "--scale", "warp_drive=2"],
    "diff-unknown-scenario": ["diff", "run", "--scenario", "nope"],
    "diff-fastmodel-run": ["diff", "run", "--scenario", "fastmodel"],
}


@pytest.mark.parametrize(
    "argv", USAGE_ERRORS.values(), ids=USAGE_ERRORS.keys()
)
def test_usage_errors_exit_two(argv):
    assert run_cli(argv) == 2


def test_missing_input_file_exits_two(tmp_path):
    gone = str(tmp_path / "missing.json")
    assert run_cli(["diff", "bench", gone, gone]) == 2
    assert run_cli(["bench", "--quick", "--no-write", "--baseline", gone]) == 2


# ----------------------------------------------------------------------
# Successes: cheap invocations of each surface must exit 0
# ----------------------------------------------------------------------
def test_info_exits_zero(capsys):
    assert run_cli(["info"]) == 0
    capsys.readouterr()


def test_empty_trajectory_exits_zero(tmp_path, capsys):
    assert run_cli(["bench", "--trajectory", str(tmp_path)]) == 0
    capsys.readouterr()


def test_identical_diff_exits_zero(tmp_path, capsys):
    from tests.harness.test_difflab import make_critpath

    path = tmp_path / "crit.json"
    path.write_text(json.dumps(make_critpath()))
    assert run_cli(["diff", "critpath", str(path), str(path)]) == 0
    capsys.readouterr()


def test_clean_lint_exits_zero(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("VALUE = 1\n")
    assert run_cli(["lint", str(clean)]) == 0
    capsys.readouterr()


# ----------------------------------------------------------------------
# Regressions/alerts: detected problems must exit 1, not 0 and not 2
# ----------------------------------------------------------------------
def test_lint_violation_exits_one(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text('latency_us = "fast"\n')  # R001: string at a _us sink
    assert run_cli(["lint", str(bad)]) == 1
    capsys.readouterr()


def test_diff_critpath_regression_exits_one(tmp_path, capsys):
    from tests.harness.test_difflab import make_critpath

    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(json.dumps(make_critpath(30.0, makespan_us=100.0)))
    b.write_text(json.dumps(make_critpath(90.0, makespan_us=160.0)))
    assert run_cli(["diff", "critpath", str(a), str(b)]) == 1
    capsys.readouterr()


def test_diff_trace_divergence_exits_one(tmp_path, capsys):
    from tests.harness.test_difflab import EVENTS, write_trace

    moved = [dict(e) for e in EVENTS]
    moved[-1]["ts_us"] += 1.0
    a = write_trace(tmp_path / "a.jsonl", EVENTS)
    b = write_trace(tmp_path / "b.jsonl", moved)
    assert run_cli(["diff", "trace", a, b]) == 1
    capsys.readouterr()


def test_bench_baseline_regression_exits_one(tmp_path, capsys):
    from tests.harness.test_difflab import make_bench_doc

    # an impossibly fast baseline: the real quick run must regress on the
    # deterministic simulated metric regardless of host speed
    baseline = make_bench_doc(read_us=0.001, wall_s=1000.0, rps=0.001)
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(baseline))
    code = run_cli([
        "bench", "--quick", "--scenario", "mix2_shared", "--no-write",
        "--out", str(tmp_path), "--baseline", str(path),
    ])
    assert code == 1
    capsys.readouterr()
