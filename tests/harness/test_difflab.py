"""``repro diff`` CLI: modes, rendering, exit codes, artifacts."""

import copy
import json

import pytest

from repro.harness.bench import SCHEMA_VERSION
from repro.harness.difflab import main
from repro.obs.diff import DIFF_SCHEMA_VERSION, load_diff


def make_bench_doc(read_us=100.0, wall_s=0.5, rps=1000.0, *, quick=True):
    return {
        "schema_version": SCHEMA_VERSION,
        "created": "2026-01-01T00:00:00Z",
        "quick": quick,
        "repeat": 1,
        "python": "3.11.0",
        "platform": "test-host",
        "scenarios": {
            "mix2_shared": {
                "kind": "simulator",
                "requests": 600,
                "metrics": {
                    "wall_s": wall_s,
                    "requests_per_s": rps,
                    "sim_mean_read_us": read_us,
                },
            }
        },
    }


def make_critpath(service_us=30.0, *, makespan_us=100.0):
    from repro.obs.critpath import CRITPATH_SCHEMA_VERSION

    return {
        "schema_version": CRITPATH_SCHEMA_VERSION,
        "makespan_us": makespan_us,
        "critical_requests": 1,
        "host_gap_us": 0.0,
        "internal_tail_us": 0.0,
        "residual_us": 0.0,
        "resources": {"ch0": {"service_us": service_us}},
        "phase_totals_us": {},
        "ranked": [{"resource": "ch0", "total_us": service_us}],
        "steps": [],
    }


def write_json(path, doc):
    path.write_text(json.dumps(doc) + "\n")
    return str(path)


def write_trace(path, events):
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event) + "\n")
    return str(path)


EVENTS = [
    {"ts_us": 1.0, "name": "arrive", "track": "w0", "cat": "sim",
     "dur_us": None, "args": {}},
    {"ts_us": 2.0, "name": "channel_acquire", "track": "ch1", "cat": "sim",
     "dur_us": 1.5, "args": {}},
]


class TestBenchMode:
    def test_identical_documents_exit_zero(self, tmp_path, capsys):
        a = write_json(tmp_path / "a.json", make_bench_doc())
        b = write_json(tmp_path / "b.json", make_bench_doc())
        assert main(["bench", a, b]) == 0
        assert "identical" in capsys.readouterr().out

    def test_regression_exits_one_and_is_rendered(self, tmp_path, capsys):
        a = write_json(tmp_path / "a.json", make_bench_doc(read_us=100.0))
        b = write_json(tmp_path / "b.json", make_bench_doc(read_us=150.0))
        assert main(["bench", a, b]) == 1
        out = capsys.readouterr().out
        assert "sim_mean_read_us" in out
        assert "regressed" in out

    def test_improvement_alone_exits_zero(self, tmp_path):
        a = write_json(tmp_path / "a.json", make_bench_doc(read_us=100.0))
        b = write_json(tmp_path / "b.json", make_bench_doc(read_us=50.0))
        assert main(["bench", a, b]) == 0

    def test_quick_full_mismatch_is_usage_error(self, tmp_path, capsys):
        a = write_json(tmp_path / "a.json", make_bench_doc(quick=True))
        b = write_json(tmp_path / "b.json", make_bench_doc(quick=False))
        assert main(["bench", a, b]) == 2
        assert "repro diff:" in capsys.readouterr().err

    def test_missing_file_is_usage_error(self, tmp_path, capsys):
        a = write_json(tmp_path / "a.json", make_bench_doc())
        assert main(["bench", a, str(tmp_path / "gone.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_json_output_is_a_valid_report(self, tmp_path, capsys):
        a = write_json(tmp_path / "a.json", make_bench_doc())
        b = write_json(tmp_path / "b.json", make_bench_doc(read_us=150.0))
        main(["bench", a, b, "--json"])
        report = load_diff(json.loads(capsys.readouterr().out))
        assert report["kind"] == "bench"
        assert report["schema_version"] == DIFF_SCHEMA_VERSION

    def test_out_writes_byte_identical_reports(self, tmp_path, capsys):
        a = write_json(tmp_path / "a.json", make_bench_doc())
        b = write_json(tmp_path / "b.json", make_bench_doc(read_us=150.0))
        main(["bench", a, b, "--out", str(tmp_path / "one.json")])
        main(["bench", a, b, "--out", str(tmp_path / "two.json")])
        one = (tmp_path / "one.json").read_bytes()
        assert one == (tmp_path / "two.json").read_bytes()
        load_diff(json.loads(one))


class TestTraceMode:
    def test_identical_streams_exit_zero(self, tmp_path, capsys):
        a = write_trace(tmp_path / "a.jsonl", EVENTS)
        b = write_trace(tmp_path / "b.jsonl", EVENTS)
        assert main(["trace", a, b]) == 0
        assert "streams identical" in capsys.readouterr().out

    def test_any_divergence_exits_one(self, tmp_path, capsys):
        moved = copy.deepcopy(EVENTS)
        moved[1]["ts_us"] = 2.5
        a = write_trace(tmp_path / "a.jsonl", EVENTS)
        b = write_trace(tmp_path / "b.jsonl", moved)
        assert main(["trace", a, b]) == 1
        out = capsys.readouterr().out
        assert "first divergence at event #1" in out
        assert "channel 1" in out

    def test_malformed_trace_is_usage_error(self, tmp_path, capsys):
        a = write_trace(tmp_path / "a.jsonl", EVENTS)
        bad = tmp_path / "b.jsonl"
        bad.write_text("not json\n")
        assert main(["trace", a, str(bad)]) == 2
        assert "not a JSONL trace" in capsys.readouterr().err


class TestCritpathMode:
    def test_identical_reports_exit_zero(self, tmp_path):
        a = write_json(tmp_path / "a.json", make_critpath())
        b = write_json(tmp_path / "b.json", make_critpath())
        assert main(["critpath", a, b]) == 0

    def test_makespan_regression_exits_one(self, tmp_path, capsys):
        a = write_json(tmp_path / "a.json", make_critpath(30.0, makespan_us=100.0))
        b = write_json(tmp_path / "b.json", make_critpath(80.0, makespan_us=150.0))
        assert main(["critpath", a, b]) == 1
        assert "ch0 moved +50.0us" in capsys.readouterr().out

    def test_accepts_explain_documents(self, tmp_path, capsys):
        from repro.harness.explain import _EXPLAIN_REQUIRED

        def explain_doc(service_us, makespan_us):
            from repro.harness.explain import EXPLAIN_SCHEMA_VERSION

            doc = {field: None for field in _EXPLAIN_REQUIRED}
            doc.update({
                "schema_version": EXPLAIN_SCHEMA_VERSION,
                "scenario": "mix2_shared",
                "quick": True,
                "requests": 600,
                "makespan_us": makespan_us,
                "total_latency_us": 1000.0,
                "summary": "test",
                "critpath": make_critpath(service_us, makespan_us=makespan_us),
            })
            return doc

        a = write_json(tmp_path / "a.json", explain_doc(30.0, 100.0))
        b = write_json(tmp_path / "b.json", explain_doc(20.0, 90.0))
        assert main(["critpath", a, b]) == 0
        assert "ch0 moved -10.0us" in capsys.readouterr().out


class TestFleetMode:
    def fleet_path(self, tmp_path):
        from tests.obs.test_diff import make_fleet_doc

        return write_json(tmp_path / "fleet.json", make_fleet_doc())

    def test_device_against_itself_exits_zero(self, tmp_path):
        assert main(["fleet", self.fleet_path(tmp_path), "0", "0"]) == 0

    def test_slower_device_exits_one(self, tmp_path, capsys):
        assert main(["fleet", self.fleet_path(tmp_path), "0", "1"]) == 1
        assert "makespan_us" in capsys.readouterr().out

    def test_unknown_device_is_usage_error(self, tmp_path, capsys):
        assert main(["fleet", self.fleet_path(tmp_path), "0", "9"]) == 2
        assert "no device 9" in capsys.readouterr().err


class TestRunMode:
    def test_self_diff_exits_zero_and_writes_artifacts(self, tmp_path, capsys):
        out = tmp_path / "self.json"
        chrome = tmp_path / "self_trace.json"
        code = main([
            "run", "--scenario", "mix2_shared", "--quick",
            "--out", str(out), "--chrome-trace", str(chrome),
        ])
        assert code == 0
        assert "streams identical" in capsys.readouterr().out
        report = load_diff(json.loads(out.read_text()))
        assert report["identical"] is True
        assert "_events_a" not in report
        records = json.loads(chrome.read_text())["traceEvents"]
        pids = {r["pid"] for r in records}
        # both sides present under their device pid namespaces
        assert any(11 <= pid <= 14 for pid in pids)
        assert any(21 <= pid <= 24 for pid in pids)

    def test_unknown_scenario_is_usage_error(self, capsys):
        assert main(["run", "--scenario", "nope", "--quick"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_fastmodel_scenario_is_rejected(self, capsys):
        assert main(["run", "--scenario", "fastmodel", "--quick"]) == 2
        assert "fastmodel backend" in capsys.readouterr().err

    def test_bad_scale_spec_is_usage_error(self, capsys):
        assert main(["run", "--quick", "--scale", "bus_bandwidth"]) == 2
        assert "KNOB=FACTOR" in capsys.readouterr().err

    def test_unknown_knob_is_usage_error(self, capsys):
        assert main(["run", "--quick", "--scale", "warp_drive=2"]) == 2
        assert "unknown knob" in capsys.readouterr().err


class TestUsage:
    def test_no_mode_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2
        assert "a mode is required" in capsys.readouterr().err
