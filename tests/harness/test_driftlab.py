"""The drift lab: adaptive-vs-one-shot reports and the ``repro drift`` CLI."""

import json

import pytest

from repro.harness.cli import main
from repro.harness.driftlab import run_driftlab


@pytest.fixture(scope="module")
def report():
    return run_driftlab("migrating_hotspot", quick=True, sanitize=True)


class TestRunDriftlab:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_driftlab("nope")

    def test_report_shape(self, report):
        assert report["scenario"] == "migrating_hotspot"
        assert report["quick"] is True
        adaptive = report["adaptive"]
        assert adaptive["decisions"]
        assert len(adaptive["realised_us"]) == len(adaptive["decisions"])
        assert report["oneshot"]["strategy"] is not None

    def test_adaptive_detects_drift_and_retrains(self, report):
        adaptive = report["adaptive"]
        assert adaptive["drift_events"]
        assert adaptive["retrains"] >= 1
        assert adaptive["promotions"] + adaptive["rollbacks"] == (
            adaptive["retrains"]
        )
        assert report["counters"]["drift.detections"] >= 1
        assert report["counters"]["keeper.retrains"] == adaptive["retrains"]

    def test_adaptive_beats_oneshot_under_drift(self, report):
        assert (
            report["adaptive"]["mean_read_us"]
            <= report["oneshot"]["mean_read_us"]
        )

    def test_sanitizer_sections_are_per_run(self, report):
        assert set(report["sanitizer"]) == {"adaptive", "oneshot"}
        assert report["sanitizer"]["adaptive"]

    def test_deterministic_report(self, report):
        again = run_driftlab("migrating_hotspot", quick=True, sanitize=True)
        assert json.dumps(report, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )

    def test_poisoned_candidates_all_roll_back(self):
        poisoned = run_driftlab("migrating_hotspot", quick=True, poison=True)
        adaptive = poisoned["adaptive"]
        assert adaptive["rollbacks"] >= 1
        assert adaptive["promotions"] == 0
        for event in adaptive["retrain_events"]:
            assert event["outcome"] == "rolled-back"


class TestDriftCli:
    def test_human_readable_output(self, capsys):
        assert main(["drift", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "one-shot" in out
        assert "adaptive" in out
        assert "retrain:" in out

    def test_json_and_out_round_trip(self, capsys, tmp_path):
        path = tmp_path / "report.json"
        assert main([
            "drift", "--quick", "--json", "--out", str(path),
        ]) == 0
        printed = json.loads(capsys.readouterr().out)
        on_disk = json.loads(path.read_text())
        assert printed == on_disk
        assert printed["scenario"] == "migrating_hotspot"

    def test_unknown_scenario_exits_nonzero(self, capsys):
        with pytest.raises(SystemExit):
            main(["drift", "--scenario", "nope"])

    def test_unwritable_out_path(self, capsys, tmp_path):
        target = tmp_path / "missing" / "report.json"
        assert main(["drift", "--quick", "--out", str(target)]) == 2
        assert "cannot write" in capsys.readouterr().err
