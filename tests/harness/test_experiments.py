"""Experiment entry points at smoke scale (cached in tmp)."""

import dataclasses

import pytest

from repro.harness import (
    MIX_COMPOSITIONS,
    OPTIMIZER_VARIANTS,
    ArtifactCache,
    Scale,
    build_dataset,
    build_mixes,
    tab2_workloads,
    train_all,
    trained_learner,
)


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


@pytest.fixture(scope="module")
def micro():
    """A scale even smaller than smoke, for unit-test latency."""
    return dataclasses.replace(
        Scale.smoke(),
        dataset_samples=8,
        train_iterations=6,
        mix_requests=400,
        fig6_samples=4,
    )


class TestVariants:
    def test_paper_hyperparameters(self):
        assert OPTIMIZER_VARIANTS["SGD"]["learning_rate"] == 0.2
        assert OPTIMIZER_VARIANTS["SGD-momentum"]["momentum"] == 0.9
        assert OPTIMIZER_VARIANTS["Adam-logistic"]["learning_rate"] == 0.02
        assert OPTIMIZER_VARIANTS["Adam-logistic"]["activation"] == "logistic"

    def test_table_iv_compositions(self):
        assert MIX_COMPOSITIONS["Mix1"] == ["mds_0", "mds_1", "rsrch_0", "prxy_0"]
        assert MIX_COMPOSITIONS["Mix2"] == ["prxy_0", "src_1", "rsrch_0", "mds_1"]
        assert all(len(v) == 4 for v in MIX_COMPOSITIONS.values())


class TestDatasetAndTraining:
    def test_build_dataset_cached(self, micro, cache):
        ds1 = build_dataset(micro, cache=cache)
        ds2 = build_dataset(micro, cache=cache)
        assert len(ds1) == 8
        assert (ds1.features == ds2.features).all()

    def test_train_all_produces_four_variants(self, micro, cache):
        res = train_all(micro, cache=cache)
        assert set(res["variants"]) == set(OPTIMIZER_VARIANTS)
        for row in res["variants"].values():
            assert len(row["loss_curve"]) == micro.train_iterations
            assert 0.0 <= row["final_accuracy"] <= 1.0
            assert row["training_time_ms"] > 0

    def test_trained_learner_roundtrips_through_cache(self, micro, cache):
        a = trained_learner(micro, cache=cache)
        b = trained_learner(micro, cache=cache)  # loaded from disk
        from repro.core import FeatureVector

        fv = FeatureVector(5, (0, 1, 0, 1), (0.25, 0.25, 0.25, 0.25))
        assert a.predict_index(fv) == b.predict_index(fv)

    def test_trained_learner_rejects_unknown_variant(self, micro, cache):
        with pytest.raises(ValueError):
            trained_learner(micro, cache=cache, variant="Adam-cubic")

    def test_cached_learner_or_none(self, micro, cache):
        from repro.harness import cached_learner_or_none

        # Empty cache: None, and crucially no hour-long build is triggered.
        assert cached_learner_or_none(micro, cache=cache) is None
        built = trained_learner(micro, cache=cache)
        probed = cached_learner_or_none(micro, cache=cache)
        assert probed is not None
        from repro.core import FeatureVector

        fv = FeatureVector(5, (0, 1, 0, 1), (0.25, 0.25, 0.25, 0.25))
        assert probed.predict_index(fv) == built.predict_index(fv)


class TestMixes:
    def test_build_mixes_shapes(self, micro):
        mixes = build_mixes(micro)
        assert set(mixes) == set(MIX_COMPOSITIONS)
        for mixed in mixes.values():
            assert len(mixed.requests) == micro.mix_requests
            assert mixed.n_tenants == 4

    def test_mix_intensities_follow_table_v_levels(self, micro):
        """Each mix replays at the rate of its published Table-V level, so
        Mix1 (level 3) is far lighter than the level-16..18 mixes."""
        from repro.harness.experiments import MIX_LEVEL_TARGETS

        mixes = build_mixes(micro)
        rates = {
            name: micro.mix_requests / max(m.duration_us(), 1.0)
            for name, m in mixes.items()
        }
        assert min(rates, key=rates.get) == "Mix1"
        assert rates["Mix2"] > 3 * rates["Mix1"]
        assert MIX_LEVEL_TARGETS == {"Mix1": 3, "Mix2": 18, "Mix3": 16, "Mix4": 17}


class TestTab2:
    def test_measured_ratios_match_paper(self):
        rows = tab2_workloads(sample_requests=3000)
        for name, row in rows.items():
            assert row["measured_write_ratio"] == pytest.approx(
                row["paper_write_ratio"], abs=0.03
            )
