"""``repro explain`` CLI and library surface."""

import json

import pytest

from repro.harness.explain import EXPLAIN_SCHEMA_VERSION, explain_scenario, main


@pytest.fixture(scope="module")
def gc_heavy_doc():
    """One quick explained run shared by the read-only assertions."""
    return explain_scenario("gc_heavy", quick=True, sanitize=True)


class TestExplainScenario:
    def test_document_shape(self, gc_heavy_doc):
        doc = gc_heavy_doc
        assert doc["schema_version"] == EXPLAIN_SCHEMA_VERSION
        assert doc["scenario"] == "gc_heavy"
        assert doc["quick"] is True
        assert doc["requests"] == 600
        assert doc["makespan_us"] > 0

    def test_critpath_sums_to_makespan(self, gc_heavy_doc):
        critpath = gc_heavy_doc["critpath"]
        covered = sum(
            sum(row.values()) for row in critpath["resources"].values()
        )
        covered += critpath["host_gap_us"] + critpath["internal_tail_us"]
        covered += critpath["residual_us"]
        assert covered == pytest.approx(gc_heavy_doc["makespan_us"], abs=1e-6)
        assert abs(critpath["residual_us"]) <= 1e-6

    def test_whatif_table_nonempty_and_verified(self, gc_heavy_doc):
        rows = gc_heavy_doc["whatif"]["counterfactuals"]
        ok = [r for r in rows if r["status"] == "ok"]
        assert ok, "virtual-speedup table must not be empty"
        assert ok[0]["verified"] is True

    def test_sanitizer_counters_present(self, gc_heavy_doc):
        stats = gc_heavy_doc["sanitizer"]
        assert stats["attribution_checks"] == 600
        assert stats["critpath_checks"] == 1

    def test_report_objects_attached(self, gc_heavy_doc):
        assert gc_heavy_doc["_critpath_report"].critical_requests > 0
        assert gc_heavy_doc["_whatif_report"].best() is not None

    def test_rejects_fastmodel_scenario(self):
        with pytest.raises(ValueError, match="fastmodel"):
            explain_scenario("fastmodel", quick=True)

    def test_unknown_scenario_raises_keyerror(self):
        with pytest.raises(KeyError):
            explain_scenario("nope", quick=True)


class TestMain:
    def test_json_output_and_out_file(self, tmp_path, capsys):
        out = tmp_path / "explain.json"
        code = main([
            "--scenario", "gc_heavy", "--quick", "--no-whatif",
            "--json", "--out", str(out),
        ])
        assert code == 0
        printed = capsys.readouterr().out
        doc = json.loads(printed[: printed.rindex("}") + 1])
        assert doc["critpath"]["critical_requests"] > 0
        on_disk = json.loads(out.read_text())
        assert on_disk["schema_version"] == EXPLAIN_SCHEMA_VERSION
        assert "_critpath_report" not in on_disk  # objects never serialized

    def test_table_output(self, capsys):
        code = main(["--scenario", "gc_heavy", "--quick", "--no-whatif",
                     "--top", "3"])
        assert code == 0
        text = capsys.readouterr().out
        assert "critical path over" in text

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["--scenario", "nope", "--quick"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_fastmodel_exits_2(self, capsys):
        assert main(["--scenario", "fastmodel", "--quick"]) == 2
        assert "fastmodel" in capsys.readouterr().err
