"""``repro fleet`` CLI and the run_fleet harness entry point."""

import json

import pytest

from repro.harness.fleetlab import (
    build_fleet_scenario,
    default_migration,
    main,
    run_fleet,
)
from repro.ssd.fleet import MigrationPlan, seeded_placement


class TestBuildScenario:
    def test_traces_cover_every_tenant(self):
        traces, config, sets = build_fleet_scenario(
            n_devices=2, n_tenants=4, total_requests=200, seed=3
        )
        assert set(traces) == {0, 1, 2, 3}
        assert sum(len(r) for r in traces.values()) == 200
        # every tenant may run on every channel (migration prerequisite)
        assert all(chs == list(range(config.channels)) for chs in sets.values())

    def test_deterministic_per_seed(self):
        a, _, _ = build_fleet_scenario(
            n_devices=2, n_tenants=2, total_requests=100, seed=5
        )
        b, _, _ = build_fleet_scenario(
            n_devices=2, n_tenants=2, total_requests=100, seed=5
        )
        assert {
            t: [(r.arrival_us, r.op, r.lpn) for r in reqs]
            for t, reqs in a.items()
        } == {
            t: [(r.arrival_us, r.op, r.lpn) for r in reqs]
            for t, reqs in b.items()
        }

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError):
            build_fleet_scenario(
                n_devices=0, n_tenants=1, total_requests=10, seed=0
            )
        with pytest.raises(ValueError):
            build_fleet_scenario(
                n_devices=1, n_tenants=0, total_requests=10, seed=0
            )


class TestDefaultMigration:
    def test_moves_first_tenant_to_next_device(self):
        traces, _, _ = build_fleet_scenario(
            n_devices=3, n_tenants=3, total_requests=150, seed=1
        )
        placement = seeded_placement(3, 3, seed=1)
        plan = default_migration(traces, placement, 3)
        assert plan.tenant == 0
        assert plan.dst == (placement[0] + 1) % 3
        last = max(reqs[-1].arrival_us for reqs in traces.values())
        assert 0.0 < plan.time_us < last

    def test_single_device_fleet_has_no_migration(self):
        traces, _, _ = build_fleet_scenario(
            n_devices=1, n_tenants=2, total_requests=50, seed=1
        )
        assert default_migration(traces, {0: 0, 1: 0}, 1) is None


class TestRunFleet:
    def test_report_carries_fleet_counters_and_migration(self):
        result, observer, report = run_fleet(
            n_devices=2, n_tenants=2, total_requests=120, seed=4
        )
        rollup = report["rollup"]
        assert rollup["counters"]["fleet.requests"] == 120
        assert rollup["counters"]["fleet.devices"] == 2
        assert rollup["counters"]["fleet.migrations"] == 1
        [mig] = report["migrations"]
        assert mig["tenant"] == 0
        assert mig["requests_replayed"] > 0
        assert observer.trace.events("tenant_migration")

    def test_empty_migration_list_disables_default(self):
        _, _, report = run_fleet(
            n_devices=2, n_tenants=2, total_requests=80, seed=4,
            migrations=[],
        )
        assert report["migrations"] == []
        assert report["placement"]["initial"] == report["placement"]["final"]

    def test_explicit_migration_plan_honoured(self):
        placement = seeded_placement(2, 2, seed=4)
        dst = (placement[1] + 1) % 2
        _, _, report = run_fleet(
            n_devices=2, n_tenants=2, total_requests=120, seed=4,
            migrations=[MigrationPlan(time_us=5000.0, tenant=1, dst=dst)],
        )
        [mig] = report["migrations"]
        assert (mig["tenant"], mig["dst"]) == (1, dst)

    def test_report_validates_with_reader(self):
        from repro.obs.fleet import load_fleet

        _, _, report = run_fleet(
            n_devices=2, n_tenants=2, total_requests=80, seed=9
        )
        assert load_fleet(json.loads(json.dumps(report))) == report


class TestCli:
    def run_main(self, args, capsys):
        code = main(args)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_quick_run_prints_summary(self, capsys):
        code, out, _ = self.run_main(
            ["--quick", "--devices", "2", "--tenants", "2"], capsys
        )
        assert code == 0
        assert "device 0:" in out and "device 1:" in out
        assert "migration: tenant 0" in out
        assert "fleet totals: 600 requests, 1 migrations across 2 devices" in out

    def test_json_output_is_the_report(self, capsys):
        code, out, _ = self.run_main(
            ["--quick", "--devices", "2", "--tenants", "2", "--json"], capsys
        )
        assert code == 0
        doc = json.loads(out)
        assert doc["scenario"]["devices"] == 2
        assert doc["rollup"]["counters"]["fleet.requests"] == 600

    def test_written_reports_are_byte_identical(self, tmp_path, capsys):
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        args = ["--quick", "--devices", "2", "--tenants", "2", "--seed", "11"]
        assert self.run_main(args + ["--out", str(p1)], capsys)[0] == 0
        assert self.run_main(args + ["--out", str(p2)], capsys)[0] == 0
        assert p1.read_bytes() == p2.read_bytes()

    def test_no_migrate_flag(self, capsys):
        code, out, _ = self.run_main(
            ["--quick", "--devices", "2", "--tenants", "2", "--no-migrate",
             "--json"], capsys
        )
        assert code == 0
        assert json.loads(out)["migrations"] == []

    def test_slo_tight_pages_and_names_device(self, capsys):
        code, out, _ = self.run_main(
            ["--quick", "--devices", "2", "--tenants", "2", "--slo-tight"],
            capsys,
        )
        assert code == 0
        assert "page:" in out
        assert "offending device" in out

    def test_chrome_trace_written(self, tmp_path, capsys):
        path = tmp_path / "fleet.chrome.json"
        code, out, _ = self.run_main(
            ["--quick", "--devices", "2", "--tenants", "2",
             "--chrome-trace", str(path)], capsys
        )
        assert code == 0
        records = json.loads(path.read_text())["traceEvents"]
        procs = {
            r["args"]["name"] for r in records
            if r.get("name") == "process_name"
        }
        assert any(p.startswith("device 0 / ") for p in procs)
        assert any(p.startswith("device 1 / ") for p in procs)
        assert "fleet" in procs

    def test_bad_migration_syntax_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--migrate", "nonsense"])
        assert exc.value.code == 2

    def test_migration_to_unknown_device_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--devices", "2", "--migrate", "0:5:100"])
        assert exc.value.code == 2

    def test_missing_slo_file_returns_2(self, capsys):
        code, _, err = self.run_main(
            ["--quick", "--slo", "/nonexistent/slo.json"], capsys
        )
        assert code == 2
        assert "cannot read SLO spec" in err

    def test_slo_and_slo_tight_are_exclusive(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--slo", "x.json", "--slo-tight"])
        assert exc.value.code == 2
