"""``repro profile`` host hot-path profiler."""

import json

import pytest

from repro.harness.hostprofile import (
    HOTPATH_SCHEMA_VERSION,
    collapsed_stacks,
    main,
    profile_scenario,
)


@pytest.fixture(scope="module")
def gc_heavy_profile():
    return profile_scenario("gc_heavy", quick=True, top=10)


class TestProfileScenario:
    def test_report_shape(self, gc_heavy_profile):
        report, _stats = gc_heavy_profile
        assert report["schema_version"] == HOTPATH_SCHEMA_VERSION
        assert report["scenario"] == "gc_heavy"
        assert report["kind"] == "simulator"
        assert report["requests"] == 600
        assert report["wall_s"] > 0
        assert report["total_calls"] > 0
        assert len(report["top_by_tottime"]) == 10
        assert len(report["top_by_cumtime"]) == 10

    def test_rankings_are_sorted(self, gc_heavy_profile):
        report, _stats = gc_heavy_profile
        tot = [row["tottime_s"] for row in report["top_by_tottime"]]
        cum = [row["cumtime_s"] for row in report["top_by_cumtime"]]
        assert tot == sorted(tot, reverse=True)
        assert cum == sorted(cum, reverse=True)

    def test_hot_functions_are_simulator_code(self, gc_heavy_profile):
        # the event-driven hot path must dominate: at least one of the
        # top own-time functions lives in repro.ssd
        report, _stats = gc_heavy_profile
        files = {row["file"] for row in report["top_by_tottime"]}
        assert any(f.startswith("src/repro/ssd/") for f in files)

    def test_paths_are_repo_relative(self, gc_heavy_profile):
        report, _stats = gc_heavy_profile
        for row in report["top_by_tottime"]:
            assert not row["file"].startswith("/")

    def test_entries_have_required_keys(self, gc_heavy_profile):
        report, _stats = gc_heavy_profile
        for row in report["top_by_tottime"]:
            assert {"function", "file", "line", "ncalls", "tottime_s",
                    "cumtime_s"} <= set(row)

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            profile_scenario("nope", quick=True)

    def test_collapsed_stacks_format(self, gc_heavy_profile):
        _report, stats = gc_heavy_profile
        lines = collapsed_stacks(stats)
        assert lines
        for line in lines[:50]:
            frames, weight = line.rsplit(" ", 1)
            assert int(weight) > 0
            assert 1 <= len(frames.split(";")) <= 2


class TestMain:
    def test_writes_report_and_collapsed(self, tmp_path, capsys):
        out = tmp_path / "hot.json"
        folded = tmp_path / "hot.folded"
        code = main([
            "--scenario", "gc_heavy", "--quick", "--top", "5",
            "--out", str(out), "--collapsed", str(folded),
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["schema_version"] == HOTPATH_SCHEMA_VERSION
        assert len(doc["top_by_tottime"]) == 5
        assert folded.read_text().strip()

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["--scenario", "nope", "--quick"]) == 2
        assert "unknown scenario" in capsys.readouterr().err
