"""Report formatting."""

import pytest

from repro.harness import banner, format_series, format_table, normalize


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.5], ["b", 22.125]],
            title="Demo",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert "alpha" in lines[3]
        assert "22.125" in lines[4]

    def test_float_formatting(self):
        text = format_table(["x"], [[1.23456]], float_format="{:.1f}")
        assert "1.2" in text
        assert "1.23" not in text

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])


class TestFormatSeries:
    def test_columns_per_series(self):
        text = format_series(
            "wp", [0.1, 0.2], {"Shared": [1.0, 2.0], "1:7": [3.0, 4.0]}
        )
        assert "Shared" in text and "1:7" in text
        assert "0.1" in text

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("x", [1, 2], {"s": [1.0]})


class TestNormalize:
    def test_first_element_reference(self):
        assert normalize([2.0, 4.0, 1.0]) == [1.0, 2.0, 0.5]

    def test_explicit_reference(self):
        assert normalize([2.0, 4.0], reference=4.0) == [0.5, 1.0]

    def test_empty(self):
        assert normalize([]) == []

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            normalize([0.0, 1.0])


class TestBanner:
    def test_centred(self):
        text = banner("Fig 2", width=20)
        assert "Fig 2" in text
        assert len(text) == 20
