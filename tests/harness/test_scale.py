"""Scale presets and env resolution."""

import pytest

from repro.harness import Scale


class TestPresets:
    def test_names(self):
        assert Scale.smoke().name == "smoke"
        assert Scale.default().name == "default"
        assert Scale.paper().name == "paper"

    def test_monotone_sizes(self):
        smoke, default, paper = Scale.smoke(), Scale.default(), Scale.paper()
        for field in ("fig2_requests", "dataset_samples", "mix_requests"):
            assert getattr(smoke, field) <= getattr(default, field) <= getattr(paper, field)

    def test_paper_scale_matches_paper_numbers(self):
        paper = Scale.paper()
        assert paper.fig2_requests == 2_000_000
        assert paper.dataset_samples == 5000
        assert paper.train_iterations == 200
        assert paper.mix_requests == 1_000_000

    def test_from_name(self):
        assert Scale.from_name("SMOKE").name == "smoke"
        with pytest.raises(ValueError):
            Scale.from_name("galactic")


class TestEnv:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert Scale.from_env().name == "smoke"

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert Scale.from_env("default").name == "default"
        assert Scale.from_env("smoke").name == "smoke"
