"""Sweep runner."""

import pytest

from repro.harness import auto_processes, run_sweep


def square(x):
    return x * x


class TestRunSweep:
    def test_serial(self):
        assert run_sweep(square, [1, 2, 3], processes=1) == [1, 4, 9]

    def test_preserves_order(self):
        assert run_sweep(square, range(10), processes=1) == [x * x for x in range(10)]

    def test_empty(self):
        assert run_sweep(square, [], processes=1) == []

    def test_serial_exceptions_propagate(self):
        def boom(x):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            run_sweep(boom, [1], processes=1)

    def test_pool_matches_serial(self):
        # Module-level function is picklable; run on two workers.
        serial = run_sweep(square, [1, 2, 3, 4], processes=1)
        parallel = run_sweep(square, [1, 2, 3, 4], processes=2)
        assert serial == parallel


class TestAutoProcesses:
    def test_explicit_wins(self):
        assert auto_processes(3) == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            auto_processes(0)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROCESSES", "5")
        assert auto_processes() == 5

    def test_defaults_to_at_least_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROCESSES", raising=False)
        assert auto_processes() >= 1
