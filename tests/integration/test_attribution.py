"""End-to-end latency attribution on seeded GC-heavy, fault-injected runs.

The acceptance contract for the attribution subsystem:

* **exact sum** — on a seeded two-tenant run with GC pressure and fault
  injection, every recorded request's phases sum to its recorded latency
  within 1e-6 us;
* **zero perturbation** — the attribution-enabled run's latency summary
  is byte-identical to a disabled run's (the collector schedules no
  events and draws no randomness);
* the same identity holds when validated through the runtime sanitizer.
"""

import pytest

from repro.analysis import Sanitizer
from repro.obs import DRAM_CHANNEL, PHASE_NAMES, Observability
from repro.ssd import FaultConfig, SSDConfig, simulate
from repro.ssd.buffer import BufferConfig
from repro.ssd.simulator import SSDSimulator
from repro.workloads import WorkloadSpec, synthesize_mix

TOLERANCE_US = 1e-6


def gc_fault_scenario():
    """Tiny device + near-capacity footprints: GC and ECC retries fire."""
    config = SSDConfig(blocks_per_plane=6, pages_per_block=16)
    specs = [
        WorkloadSpec(name="writer", write_ratio=0.9, rate_rps=4000.0,
                     footprint_pages=220),
        WorkloadSpec(name="reader", write_ratio=0.2, rate_rps=3000.0,
                     footprint_pages=220),
    ]
    requests = synthesize_mix(specs, total_requests=1200, seed=7).requests
    sets = {0: [0], 1: [1]}
    faults = FaultConfig(seed=5, read_ber=0.08, program_fail_rate=0.001,
                         erase_fail_rate=0.005)
    return requests, config, sets, faults


@pytest.fixture(scope="module")
def attributed_run():
    requests, config, sets, faults = gc_fault_scenario()
    obs = Observability(attribution=True)
    result = simulate(requests, config, sets, record_latencies=True,
                      obs=obs, faults=faults)
    return requests, config, sets, faults, obs, result


class TestExactSum:
    def test_every_request_sums_to_its_latency(self, attributed_run):
        *_, obs, result = attributed_run
        records = obs.attribution.records
        assert len(records) == result.requests
        worst = max(
            abs(rec.phase_sum_us() - rec.latency_us) for rec in records
        )
        assert worst <= TOLERANCE_US

    def test_gc_stall_and_ecc_retry_phases_fire(self, attributed_run):
        *_, result = attributed_run
        totals = result.breakdown.phase_totals_us
        assert totals["gc_stall_us"] > 0.0
        assert totals["ecc_retry_us"] > 0.0
        assert totals["die_us"] > 0.0
        assert totals["bus_us"] > 0.0

    def test_breakdown_totals_match_recorded_latency(self, attributed_run):
        *_, obs, result = attributed_run
        b = result.breakdown
        assert b.total_latency_us == pytest.approx(
            sum(r.latency_us for r in obs.attribution.records)
        )
        assert sum(b.phase_totals_us.values()) == pytest.approx(
            b.total_latency_us, abs=len(obs.attribution.records) * TOLERANCE_US
        )

    def test_gc_cause_side_is_populated(self, attributed_run):
        *_, result = attributed_run
        b = result.breakdown
        assert b.gc_triggers, "no tenant was charged for GC work"
        assert b.gc_reclaims, "no channel reclaimed a block"
        assert sum(r["moves"] for r in b.gc_reclaims.values()) > 0

    def test_per_tenant_rows_cover_all_requests(self, attributed_run):
        *_, result = attributed_run
        b = result.breakdown
        assert set(b.per_tenant) == {0, 1}
        assert sum(r["requests"] for r in b.per_tenant.values()) == b.requests
        assert sum(r["requests"] for r in b.per_channel.values()) == b.requests


class TestZeroPerturbation:
    def test_summary_byte_identical_with_attribution_on(self, attributed_run):
        requests, config, sets, faults, _, attributed = attributed_run
        plain = simulate(requests, config, sets, record_latencies=True,
                         faults=faults)
        assert attributed.summary() == plain.summary()
        assert attributed.makespan_us == plain.makespan_us


class TestSanitizerIntegration:
    def test_exact_sum_checked_through_sanitizer(self):
        requests, config, sets, faults = gc_fault_scenario()
        obs = Observability(attribution=True)
        sanitizer = Sanitizer()
        result = simulate(requests, config, sets, record_latencies=True,
                          obs=obs, faults=faults, sanitizer=sanitizer)
        stats = sanitizer.stats()
        assert stats["attribution_checks"] == result.requests
        assert all(v > 0 for v in stats.values()), stats


class TestBufferHits:
    def test_buffer_served_requests_attribute_to_dram(self):
        config = SSDConfig.small()
        specs = [
            WorkloadSpec(name="hot", write_ratio=0.5, rate_rps=4000.0,
                         footprint_pages=64),
        ]
        requests = synthesize_mix(
            specs, total_requests=400, seed=13
        ).requests
        obs = Observability(attribution=True)
        sim = SSDSimulator(
            config, {0: list(range(config.channels))},
            record_latencies=True,
            buffer=BufferConfig(capacity_pages=128),
            obs=obs,
        )
        result = sim.run(requests)
        b = result.breakdown
        assert b.phase_totals_us["buffer_us"] > 0.0
        dram = b.per_channel.get(DRAM_CHANNEL)
        assert dram is not None and dram["requests"] > 0
        # flash phases stay zero on the DRAM "channel" row
        for name in PHASE_NAMES:
            if name != "buffer_us":
                assert dram[name] == 0.0
        worst = max(
            abs(rec.phase_sum_us() - rec.latency_us)
            for rec in obs.attribution.records
        )
        assert worst <= TOLERANCE_US
