"""End-to-end differential forensics on seeded scenarios.

The acceptance contract for the diff subsystem:

* **self-diff is provably empty** — re-simulating a seeded scenario
  against itself yields zero divergences across the metric, trace, and
  critical-path sections (the determinism assertion CI leans on);
* **localization agrees with the what-if sweep** — scaling the
  ``bus_bandwidth`` knob down must shift on-critical-path time onto a
  channel resource, the same bottleneck family the what-if engine's
  ``bus_2x`` counterfactual identifies as dominant on the same trace;
* **byte determinism** — repeated invocations over the same inputs
  produce byte-identical report documents.
"""

import json

import pytest

from repro.harness.bench import SCENARIOS
from repro.obs.diff import diff_run, load_diff, write_diff
from repro.obs.whatif import run_whatif

REQUESTS = 300


@pytest.fixture(scope="module")
def scenario():
    kind, requests, cfg, sets, faults = SCENARIOS["mix2_shared"](REQUESTS)
    assert kind == "simulator"
    return requests, cfg, sets, faults


@pytest.fixture(scope="module")
def scaled_report(scenario):
    requests, cfg, sets, faults = scenario
    cfg_b = cfg.scale_knob("bus_bandwidth", 0.25)
    return diff_run(requests, cfg, sets, cfg_b, faults=faults,
                    label_a="base", label_b="bus-quarter")


class TestSelfDiffIsEmpty:
    def test_every_section_reports_identical(self, scenario):
        requests, cfg, sets, faults = scenario
        report = diff_run(requests, cfg, sets, faults=faults)
        assert report["identical"] is True
        assert report["divergences"] == 0
        assert report["regressions"] == 0
        for name, section in report["sections"].items():
            assert section["identical"] is True, name
        assert report["sections"]["trace"]["first_divergence"] is None

    def test_self_diff_leaves_requests_reusable(self, scenario):
        # diff_run resets completion stamps; a second self-diff over the
        # same request objects must still come back empty
        requests, cfg, sets, faults = scenario
        first = diff_run(requests, cfg, sets, faults=faults)
        second = diff_run(requests, cfg, sets, faults=faults)
        assert first == second
        assert second["identical"] is True


class TestKnobLocalization:
    def test_slower_bus_forks_history_on_a_channel_event(self, scaled_report):
        first = scaled_report["sections"]["trace"]["first_divergence"]
        assert first is not None
        assert first["channel"] is not None

    def test_critpath_shift_names_a_channel_resource(self, scaled_report):
        critpath = scaled_report["sections"]["critpath"]
        assert critpath["top_resource_shift"] is not None
        assert critpath["top_resource_shift"].startswith("ch")
        assert critpath["makespan"]["classification"] == "regressed"

    def test_whatif_sweep_predicts_the_same_bottleneck(self, scenario,
                                                       scaled_report):
        # the what-if engine answers prospectively ("which knob would
        # help most"), the diff answers retrospectively ("which resource
        # absorbed the slowdown") — on the same trace the two must agree
        # on the bus/channel family
        requests, cfg, sets, faults = scenario
        whatif = run_whatif(requests, cfg, sets, faults=faults, verify=False)
        speedups = {row.name: row.speedup for row in whatif.ranked()}
        assert speedups["bus_2x"] > 1.0  # the bus is on the critical path
        assert scaled_report["sections"]["critpath"][
            "top_resource_shift"
        ].startswith("ch")

    def test_latency_metrics_regress(self, scaled_report):
        cells = scaled_report["sections"]["metrics"]["metrics"]
        assert cells["total_latency_us"]["classification"] == "regressed"
        assert cells["makespan_us"]["classification"] == "regressed"


class TestByteDeterminism:
    def test_reports_are_byte_identical_across_invocations(self, scenario,
                                                           tmp_path):
        requests, cfg, sets, faults = scenario
        cfg_b = cfg.scale_knob("bus_bandwidth", 0.25)
        paths = []
        for name in ("one.json", "two.json"):
            report = diff_run(requests, cfg, sets, cfg_b, faults=faults,
                              label_a="base", label_b="bus-quarter")
            paths.append(write_diff(report, tmp_path / name))
        assert paths[0].read_bytes() == paths[1].read_bytes()
        load_diff(json.loads(paths[0].read_text()))

    def test_serialised_report_has_no_wall_clock_stamps(self, scaled_report,
                                                        tmp_path):
        path = write_diff(scaled_report, tmp_path / "report.json")
        text = path.read_text()
        assert "created" not in text
        assert "timestamp" not in text
