"""Acceptance contract for the hardened adaptive keeper.

Three properties, end to end, on the seeded migrating-hotspot scenario:

* **adaptation wins** — the adaptive keeper's mean read latency is no
  worse than the one-shot keeper's (whose single early decision goes
  stale as the hotspot migrates);
* **determinism** — two same-seed adaptive runs produce byte-identical
  decision/drift/retrain logs;
* **rollback safety** — an injected poisoned candidate is rolled back
  without perturbing the live allocation policy: the decision sequence
  matches a poison-free run whose retrains were never promoted.
"""

import json

from repro.core import SSDKeeper
from repro.harness.driftlab import (
    heuristic_allocator,
    lab_configs,
    run_driftlab,
)
from repro.ssd import SSDConfig
from repro.workloads import build_scenario

PHASES = 4
PHASE_US = 25_000.0


def hotspot_requests(seed=0):
    return build_scenario(
        "migrating_hotspot", seed=seed, phases=PHASES, phase_us=PHASE_US
    ).requests


def adaptive_run(requests, *, poison=False):
    keeper = SSDKeeper(
        heuristic_allocator(),
        SSDConfig.small(),
        collect_window_us=10_000.0,
        intensity_quantum=50.0,
        verify_top_k=3,
    )
    drift, retrain = lab_configs(poison)
    return keeper.run_adaptive(requests, drift=drift, retrain=retrain)


def run_log(run):
    """The full observable behaviour of a run, JSON-serialisable."""
    return {
        "decisions": [
            {"time_us": t, "strategy": s.label} for t, _, s in run.decisions
        ],
        "realised_us": run.realised_us,
        "drift": [e.to_dict() for e in run.drift_events],
        "retrain": [e.to_dict() for e in run.retrain_events],
        "mean_read_us": run.result.mean_read_us,
        "mean_write_us": run.result.mean_write_us,
    }


class TestAdaptationAcceptance:
    def test_adaptive_no_worse_than_oneshot(self):
        report = run_driftlab("migrating_hotspot", quick=True)
        assert (
            report["adaptive"]["mean_read_us"]
            <= report["oneshot"]["mean_read_us"]
        )

    def test_adaptive_actually_adapts(self):
        run = adaptive_run(hotspot_requests())
        assert run.drift_events
        assert run.retrains >= 1
        assert len(run.distinct_strategies()) >= 1

    def test_two_runs_byte_identical(self):
        logs = [
            json.dumps(run_log(adaptive_run(hotspot_requests())),
                       sort_keys=True)
            for _ in range(2)
        ]
        assert logs[0] == logs[1]


class TestPoisonedRetrainSafety:
    def test_poison_rolls_back_without_touching_allocation(self):
        clean = adaptive_run(hotspot_requests())
        poisoned = adaptive_run(hotspot_requests(), poison=True)

        assert poisoned.rollbacks == poisoned.retrains >= 1
        assert poisoned.promotions == 0
        for event in poisoned.retrain_events:
            assert event.outcome == "rolled-back"
            assert event.candidate_cost_us is None

        # Rollback keeps the incumbent live: until the clean run's first
        # promotion, the two runs decide identically (same model, same
        # trace). If the clean run never promoted, whole logs must match.
        promoted_at = next(
            (e.window_index for e in clean.retrain_events if e.promoted),
            None,
        )
        clean_decisions = [
            (t, s.label) for t, _, s in clean.decisions
        ]
        poisoned_decisions = [
            (t, s.label) for t, _, s in poisoned.decisions
        ]
        if promoted_at is None:
            assert poisoned_decisions == clean_decisions
        else:
            assert (
                poisoned_decisions[: promoted_at + 1]
                == clean_decisions[: promoted_at + 1]
            )

    def test_poisoned_run_still_completes_all_requests(self):
        requests = hotspot_requests()
        run = adaptive_run(requests, poison=True)
        assert run.result.requests == len(requests)
