"""End-to-end pipeline: label -> train -> allocate -> adapt online.

This is Algorithm 1 + Algorithm 2 composed on a micro scale: the whole
SSDKeeper lifecycle in one test module.
"""

import numpy as np
import pytest

from repro.core import (
    ChannelAllocator,
    LabelerConfig,
    PagePolicy,
    SSDKeeper,
    StrategyLearner,
    StrategySpace,
    generate_dataset,
)
from repro.ssd import SSDConfig
from repro.workloads import WorkloadSpec, synthesize_mix


@pytest.fixture(scope="module")
def pipeline():
    """Train a tiny model once for the whole module."""
    cfg = LabelerConfig(
        ssd=SSDConfig.small(),
        n_tenants=4,
        window_requests_max=400,
        window_s=0.02,
        replications=1,
    )
    space = StrategySpace(cfg.ssd.channels, cfg.n_tenants)
    dataset = generate_dataset(16, cfg, seed=7, space=space)
    learner = StrategyLearner(space, activation="logistic", seed=0)
    history = learner.train(dataset, optimizer="adam", iterations=40, seed=0)
    return cfg, learner, history, dataset


class TestPipeline:
    def test_training_converges(self, pipeline):
        _, _, history, _ = pipeline
        assert history.loss[-1] < history.loss[0]

    def test_dataset_features_are_nine_dimensional(self, pipeline):
        _, _, _, dataset = pipeline
        assert dataset.features.shape[1] == 9
        assert dataset.n_classes == 42

    def test_keeper_adapts_online(self, pipeline):
        cfg, learner, _, _ = pipeline
        keeper = SSDKeeper(
            ChannelAllocator(learner),
            cfg.ssd,
            collect_window_us=cfg.window_s * 1e6,
            intensity_quantum=cfg.intensity_quantum,
            page_policy=PagePolicy.HYBRID,
        )
        specs = [
            WorkloadSpec(
                name=f"t{i}",
                write_ratio=1.0 if i < 2 else 0.0,
                rate_rps=8000.0,
                footprint_pages=cfg.footprint_pages,
            )
            for i in range(4)
        ]
        mixed = synthesize_mix(specs, total_requests=800, seed=3)
        run = keeper.run(mixed.requests)
        assert run.switched
        assert run.result.requests == 800
        assert run.features.n_tenants == 4
        # Write-dominated tenants 0/1 were detected as such.
        assert run.features.characteristics[:2] == (0, 0)

    def test_adaptive_beats_worst_fixed_strategy(self, pipeline):
        """The learned allocation should never be the pathological choice."""
        cfg, learner, _, _ = pipeline
        allocator = ChannelAllocator(learner)
        keeper = SSDKeeper(
            allocator,
            cfg.ssd,
            collect_window_us=cfg.window_s * 1e6,
            intensity_quantum=cfg.intensity_quantum,
        )
        specs = [
            WorkloadSpec(
                name=f"t{i}",
                write_ratio=1.0 if i == 0 else 0.0,
                rate_rps=12000.0 if i == 0 else 3000.0,
                footprint_pages=cfg.footprint_pages,
            )
            for i in range(4)
        ]
        mixed = synthesize_mix(specs, total_requests=900, seed=5)
        adaptive = keeper.run(list(mixed.requests))
        fv = adaptive.features
        space = learner.space
        totals = []
        for strategy in space:
            result = keeper.baseline_run(list(mixed.requests), strategy, fv)
            totals.append(result.total_latency_us)
        worst = max(totals)
        assert adaptive.result.total_latency_us < worst

    def test_learner_roundtrip_preserves_keeper_decisions(self, pipeline, tmp_path):
        cfg, learner, _, _ = pipeline
        path = tmp_path / "model.json"
        learner.save(path)
        clone = StrategyLearner.load(path)
        rng = np.random.default_rng(0)
        from repro.core import FeatureVector

        for _ in range(10):
            fv = FeatureVector(
                int(rng.integers(0, 20)),
                tuple(int(rng.integers(0, 2)) for _ in range(4)),
                tuple(rng.dirichlet(np.ones(4))),
            )
            assert clone.predict_index(fv) == learner.predict_index(fv)
