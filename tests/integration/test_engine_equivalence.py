"""Property: the fast model is exact when no queueing reordering occurs.

On traces whose requests are spaced beyond the worst-case service time,
every resource is idle at each arrival, so the two engines must produce
*identical* latencies (same placement, same unloaded phase sums).  Under
contention we require agreement of total latency within a modest band and
identical structural counts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.ssd import FastLatencyModel, IORequest, OpType, ServiceTimes, SSDConfig, SSDSimulator

CONFIG = SSDConfig.small()
SETS = {0: list(range(8)), 1: list(range(8))}


def spaced_trace(ops, spacing_us):
    reqs = []
    t = 0.0
    for op, lpn, length in ops:
        reqs.append(
            IORequest(arrival_us=t, workload_id=0, op=op, lpn=lpn, length=length)
        )
        t += spacing_us
    return reqs


request_shape = st.tuples(
    st.sampled_from([OpType.READ, OpType.WRITE]),
    st.integers(0, 4096),
    st.integers(1, 4),
)


class TestUncontendedEquivalence:
    @given(ops=st.lists(request_shape, min_size=1, max_size=40))
    @settings(max_examples=25)
    def test_identical_latencies_without_contention(self, ops):
        t = ServiceTimes.from_config(CONFIG)
        spacing = (t.write_service_us + t.read_service_us) * 8  # fully idle
        reqs = spaced_trace(ops, spacing)

        des = SSDSimulator(CONFIG, SETS).run(
            [IORequest(r.arrival_us, r.workload_id, r.op, r.lpn, r.length) for r in reqs]
        )
        fast = FastLatencyModel(CONFIG, SETS).run(
            [IORequest(r.arrival_us, r.workload_id, r.op, r.lpn, r.length) for r in reqs]
        )
        assert fast.total_latency_us == pytest.approx(
            des.total_latency_us, rel=1e-12
        )
        assert fast.read.count == des.read.count
        assert fast.write.count == des.write.count
        assert fast.subrequests == des.subrequests

    def test_identical_per_request_completion_when_idle(self):
        t = ServiceTimes.from_config(CONFIG)
        reqs = spaced_trace(
            [(OpType.READ, i * 16, 2) for i in range(10)],
            spacing_us=5000.0,
        )
        des_reqs = [IORequest(r.arrival_us, 0, r.op, r.lpn, r.length) for r in reqs]
        SSDSimulator(CONFIG, SETS).run(des_reqs)
        for r in des_reqs:
            assert r.latency_us == pytest.approx(t.read_service_us)


class TestContendedAgreement:
    @given(seed=st.integers(0, 500))
    @settings(max_examples=10)
    def test_totals_within_band_under_contention(self, seed):
        rng = np.random.default_rng(seed)
        reqs = [
            IORequest(
                arrival_us=float(rng.uniform(0, 10_000)),
                workload_id=int(rng.integers(0, 2)),
                op=OpType(int(rng.integers(0, 2))),
                lpn=int(rng.integers(0, 2048)),
                length=int(rng.integers(1, 4)),
            )
            for _ in range(150)
        ]
        des = SSDSimulator(CONFIG, SETS).run(
            [IORequest(r.arrival_us, r.workload_id, r.op, r.lpn, r.length) for r in reqs]
        )
        fast = FastLatencyModel(CONFIG, SETS).run(
            [IORequest(r.arrival_us, r.workload_id, r.op, r.lpn, r.length) for r in reqs]
        )
        assert fast.total_latency_us == pytest.approx(
            des.total_latency_us, rel=0.35
        )
