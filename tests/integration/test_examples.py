"""Examples stay importable and their cheap paths run.

The full examples take minutes (they train models); here we compile all of
them and exercise the quickstart end to end with a reduced workload by
reusing its building blocks.
"""

from pathlib import Path
import py_compile

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent.parent / "examples").glob("*.py")
)


class TestExamples:
    def test_examples_exist(self):
        names = {p.name for p in EXAMPLES}
        assert {
            "quickstart.py",
            "multi_tenant_datacenter.py",
            "online_adaptation.py",
            "page_allocation_study.py",
        } <= names

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_example_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    def test_quickstart_logic_small(self, capsys):
        """The quickstart's core loop on a tiny workload."""
        from repro.core import StrategySpace
        from repro.ssd import SSDConfig, simulate
        from repro.workloads import WorkloadSpec, synthesize_mix

        config = SSDConfig.small()
        tenants = [
            WorkloadSpec(name="logger", write_ratio=0.95, rate_rps=12_000,
                         footprint_pages=8192),
            WorkloadSpec(name="web", write_ratio=0.05, rate_rps=14_000,
                         footprint_pages=8192),
        ]
        mixed = synthesize_mix(tenants, total_requests=400, seed=42)
        space = StrategySpace(config.channels, 2)
        write_dominated = [s.is_write_dominated for s in tenants]
        totals = {}
        for strategy in space:
            sets = strategy.channel_sets(config.channels, write_dominated)
            totals[strategy.label] = simulate(
                list(mixed.requests), config, sets
            ).total_latency_us
        assert len(totals) == 8
        assert all(v > 0 for v in totals.values())
