"""End-to-end critical-path + what-if explanation (golden acceptance).

The acceptance contract for the explainer:

* **exact sum** — on the seeded two-tenant GC+faults run, the
  per-resource critical-path times sum to the run makespan within
  1e-6 us (the ``critpath-exact-sum`` invariant), both directly and
  when routed through the runtime sanitizer;
* **zero perturbation** — arming attribution + extraction leaves the
  baseline run's latency summary byte-identical to an unarmed run;
* the **what-if sweep** over the same trace produces a nonempty ranked
  table whose top counterfactual is verified by an identical second
  re-simulation.
"""

import math

import pytest

from repro.analysis import Sanitizer
from repro.obs import Observability
from repro.obs.critpath import extract_critical_path
from repro.obs.whatif import run_whatif
from repro.ssd import FaultConfig, SSDConfig, simulate
from repro.workloads import WorkloadSpec, synthesize_mix

TOLERANCE_US = 1e-6


def gc_fault_scenario():
    """Seeded 2-tenant GC+faults run (same shape as the attribution one)."""
    config = SSDConfig(blocks_per_plane=6, pages_per_block=16)
    specs = [
        WorkloadSpec(name="writer", write_ratio=0.9, rate_rps=4000.0,
                     footprint_pages=220),
        WorkloadSpec(name="reader", write_ratio=0.2, rate_rps=3000.0,
                     footprint_pages=220),
    ]
    requests = synthesize_mix(specs, total_requests=1200, seed=7).requests
    sets = {0: [0], 1: [1]}
    faults = FaultConfig(seed=5, read_ber=0.08, program_fail_rate=0.001,
                         erase_fail_rate=0.005)
    return requests, config, sets, faults


@pytest.fixture(scope="module")
def explained_run():
    requests, config, sets, faults = gc_fault_scenario()
    obs = Observability(attribution=True)
    sanitizer = Sanitizer()
    result = simulate(requests, config, sets, record_latencies=True,
                      obs=obs, faults=faults, sanitizer=sanitizer)
    report = extract_critical_path(
        obs.attribution.records, result.makespan_us,
        tolerance_us=TOLERANCE_US, sanitizer=sanitizer,
    )
    return requests, config, sets, faults, obs, result, report, sanitizer


class TestGoldenExactSum:
    def test_resource_times_sum_to_makespan(self, explained_run):
        *_, result, report, _san = explained_run
        covered_us = math.fsum(
            value
            for row in report.resources.values()
            for value in row.values()
        )
        covered_us += report.host_gap_us + report.internal_tail_us
        assert covered_us == pytest.approx(
            result.makespan_us, abs=TOLERANCE_US
        )
        assert abs(report.residual_us) <= TOLERANCE_US
        assert report.total_us() == pytest.approx(
            result.makespan_us, abs=1e-9
        )

    def test_chain_is_contiguous_and_chronological(self, explained_run):
        *_, report, _san = explained_run
        assert report.steps[-1].end_us == pytest.approx(report.makespan_us)
        assert report.steps[0].start_us == pytest.approx(0.0, abs=1e-9)
        for prev, cur in zip(report.steps, report.steps[1:]):
            assert cur.start_us == pytest.approx(prev.end_us, abs=1e-9)

    def test_gc_pressure_shows_on_the_path(self, explained_run):
        *_, report, _san = explained_run
        # the run is GC-bound by construction: die gc/wait time dominates
        assert report.phase_totals_us["gc_stall_us"] > 0.0
        assert report.bottleneck().startswith("die")

    def test_sanitizer_counted_the_check(self, explained_run):
        *_, result, _report, sanitizer = explained_run
        stats = sanitizer.stats()
        assert stats["critpath_checks"] == 1
        assert stats["attribution_checks"] == result.requests
        assert all(v > 0 for v in stats.values()), stats


class TestZeroPerturbation:
    def test_summary_byte_identical_with_explainer_armed(self, explained_run):
        requests, config, sets, faults, _obs, armed, *_ = explained_run
        plain = simulate(requests, config, sets, record_latencies=True,
                         faults=faults)
        assert armed.summary() == plain.summary()
        assert armed.makespan_us == plain.makespan_us


class TestWhatIfEndToEnd:
    def test_sweep_on_gc_bound_run(self, explained_run):
        requests, config, sets, faults, _obs, result, *_ = explained_run
        report = run_whatif(requests, config, sets, faults=faults,
                            baseline=result)
        ranked = report.ranked()
        assert ranked, "sweep produced no applicable counterfactuals"
        assert ranked[0].verified
        # this trace pins each tenant to one channel of a tiny device;
        # halving tPROG must beat doing nothing
        by_name = {row.name: row for row in ranked}
        assert by_name["tPROG_half"].speedup > 1.0
