"""Fast model vs event-driven simulator: strategy-ranking fidelity.

The label sweeps (Algorithm 1) use the vectorised fast model; this test
verifies the substitution documented in DESIGN.md — the fast model must
rank allocation strategies like the exact engine, and deploying the fast
model's winner must cost little under the exact engine.
"""

import numpy as np
import pytest

from repro.core import LabelerConfig, StrategySpace, random_specs, sweep_strategies
from repro.core.features import features_of_mix
from repro.core.labeler import pick_label
from repro.ssd import SSDConfig
from repro.workloads import synthesize_mix


def spearman(a, b):
    ra = np.argsort(np.argsort(a)).astype(float)
    rb = np.argsort(np.argsort(b)).astype(float)
    ra -= ra.mean()
    rb -= rb.mean()
    return float((ra * rb).sum() / np.sqrt((ra**2).sum() * (rb**2).sum()))


@pytest.fixture(scope="module")
def sweeps():
    fast_cfg = LabelerConfig(
        ssd=SSDConfig.small(),
        n_tenants=4,
        window_requests_max=600,
        window_s=0.02,
        replications=1,
        engine="fast",
    )
    event_cfg = LabelerConfig(
        ssd=fast_cfg.ssd,
        n_tenants=4,
        window_requests_max=600,
        window_s=0.02,
        replications=1,
        engine="event",
    )
    space = StrategySpace()
    rng = np.random.default_rng(17)
    rows = []
    for i in range(3):
        specs, total = random_specs(fast_cfg, rng, intensity_level=12 + 3 * i)
        mixed = synthesize_mix(specs, total_requests=total, seed=100 + i)
        fv = features_of_mix(mixed, intensity_quantum=fast_cfg.intensity_quantum)
        fast = np.array(
            [r.total_latency_us for r in sweep_strategies(mixed, fv, space, fast_cfg)]
        )
        event = np.array(
            [r.total_latency_us for r in sweep_strategies(mixed, fv, space, event_cfg)]
        )
        rows.append((fast, event))
    return rows


class TestRankingFidelity:
    def test_rank_correlation_is_high(self, sweeps):
        for fast, event in sweeps:
            assert spearman(fast, event) > 0.85

    def test_fast_winner_is_near_optimal_under_exact_engine(self, sweeps):
        for fast, event in sweeps:
            winner = pick_label(fast, 0.03)
            cross_regret = event[winner] / event.min()
            assert cross_regret < 1.5

    def test_worst_strategies_agree(self, sweeps):
        """Both engines agree on which strategies are catastrophic."""
        for fast, event in sweeps:
            fast_bad = set(np.argsort(fast)[-5:])
            event_bad = set(np.argsort(event)[-5:])
            assert len(fast_bad & event_bad) >= 3
