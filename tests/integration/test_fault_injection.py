"""Fault injection end to end: determinism, retirement safety, degradation.

The three acceptance properties of the fault subsystem:

* a fixed fault seed makes two runs byte-identical;
* blocks retired by program/erase failures never re-enter allocation or GC,
  and the capacity books stay balanced;
* the keeper degrades gracefully — an unhealthy model or a failing channel
  produces exactly one logged ``keeper_fallback`` to a valid strategy
  instead of a crash or a garbage allocation.
"""

import numpy as np
import pytest

from repro.core import (
    ChannelAllocator,
    Dataset,
    FeatureVector,
    SSDKeeper,
    StrategyLearner,
    StrategySpace,
)
from repro.core.strategies import StrategyKind
from repro.obs import Observability
from repro.ssd import FaultConfig, SSDConfig, SSDSimulator
from repro.workloads import WorkloadSpec, synthesize_mix


def mixed_requests(
    total=800, seed=3, write_ratio_even=0.9, write_ratio_odd=0.1, footprint=2048
):
    specs = [
        WorkloadSpec(
            name=f"t{i}",
            write_ratio=write_ratio_even if i % 2 == 0 else write_ratio_odd,
            rate_rps=5000.0,
            footprint_pages=footprint,
        )
        for i in range(4)
    ]
    return synthesize_mix(specs, total_requests=total, seed=seed).requests


def shared_sets(config):
    return {wid: list(range(config.channels)) for wid in range(4)}


def make_allocator(label: int = 8, seed: int = 0) -> ChannelAllocator:
    """An allocator trained to (almost) always answer strategy ``label``."""
    rng = np.random.default_rng(seed)
    space = StrategySpace(8, 4)
    rows = []
    for _ in range(80):
        fv = FeatureVector(
            int(rng.integers(0, 20)),
            tuple(int(rng.integers(0, 2)) for _ in range(4)),
            tuple(rng.dirichlet(np.ones(4))),
        )
        rows.append(fv.to_array())
    ds = Dataset(
        features=np.vstack(rows), labels=np.full(80, label), n_classes=len(space)
    )
    learner = StrategyLearner(space, seed=0)
    learner.train(ds, iterations=30, seed=0)
    return ChannelAllocator(learner)


FAULTS = FaultConfig(
    seed=99,
    read_ber=0.05,
    program_fail_rate=0.003,
    erase_fail_rate=0.2,
    wear_coupling=0.1,
    max_read_retries=2,
)


class TestDeterminism:
    def _run(self, config):
        sim = SSDSimulator(
            config, shared_sets(config), record_latencies=True, faults=FAULTS
        )
        return sim.run(mixed_requests())

    def test_same_seed_byte_identical_summary(self, small_config):
        a = self._run(small_config)
        b = self._run(small_config)
        assert a.summary() == b.summary()
        assert "faults[" in a.summary()
        assert a.extras["faults"] == b.extras["faults"]
        assert a.read.samples == b.read.samples

    def test_different_seed_diverges(self, small_config):
        a = self._run(small_config)
        sim = SSDSimulator(
            small_config,
            shared_sets(small_config),
            record_latencies=True,
            faults=FaultConfig(
                seed=100,
                read_ber=FAULTS.read_ber,
                program_fail_rate=FAULTS.program_fail_rate,
                erase_fail_rate=FAULTS.erase_fail_rate,
                wear_coupling=FAULTS.wear_coupling,
                max_read_retries=FAULTS.max_read_retries,
            ),
        )
        b = sim.run(mixed_requests())
        assert a.extras["faults"] != b.extras["faults"]

    def test_zero_rate_config_matches_disabled(self, small_config):
        """An attached but all-zero fault model must not perturb timing."""
        with_off = SSDSimulator(
            small_config, shared_sets(small_config), faults=FaultConfig()
        ).run(mixed_requests())
        without = SSDSimulator(small_config, shared_sets(small_config)).run(
            mixed_requests()
        )
        assert with_off.total_latency_us == without.total_latency_us
        assert with_off.makespan_us == without.makespan_us
        assert with_off.failed_reads == 0


class TestRetirementUnderLoad:
    @pytest.fixture()
    def stressed(self):
        """A GC-heavy run under aggressive failure rates.

        Small planes with plenty of spare blocks: retirement concentrates in
        whichever plane loses a block first (it hits the GC threshold first,
        so the erase failures land there too), and the spares are what let
        the device absorb that spiral instead of running out of space.
        """
        config = SSDConfig(
            channels=8,
            chips_per_channel=2,
            dies_per_chip=1,
            planes_per_die=2,
            blocks_per_plane=16,
            pages_per_block=8,
        )
        sim = SSDSimulator(
            config,
            shared_sets(config),
            faults=FaultConfig(
                seed=7,
                read_ber=0.02,
                program_fail_rate=0.002,
                erase_fail_rate=0.08,
                wear_coupling=0.05,
            ),
        )
        result = sim.run(
            mixed_requests(total=3600, write_ratio_odd=0.6, footprint=300)
        )
        return sim, result

    def test_faults_actually_fired(self, stressed):
        sim, result = stressed
        assert sim.faults.retired_blocks > 0
        assert sim.faults.program_failures > 0
        assert sim.faults.erase_failures > 0  # GC-path retirement exercised
        assert sim.controller.gc.collections > 0
        assert result.extras["faults"]["retired_blocks"] == sim.faults.retired_blocks

    def test_bad_blocks_never_free_sealed_or_active(self, stressed):
        sim, _ = stressed
        for plane in sim.controller.state.planes:
            plane.check_invariants()  # includes bad ∉ sealed/free/active

    def test_capacity_books_balance(self, stressed):
        sim, _ = stressed
        state = sim.controller.state
        ppb = state.config.pages_per_block
        assert state.retired_blocks() == sim.faults.retired_blocks
        assert sim.faults.lost_pages == sim.faults.retired_blocks * ppb
        assert (
            sum(p.retired_pages for p in state.planes) == sim.faults.lost_pages
        )
        assert (
            state.usable_pages()
            == state.config.total_pages - sim.faults.lost_pages
        )

    def test_gc_victims_exclude_retired_blocks(self, stressed):
        sim, _ = stressed
        gc = sim.controller.gc
        for plane in sim.controller.state.planes:
            victim = gc.pick_victim(plane)
            if victim is not None:
                assert victim not in plane.bad_blocks

    def test_data_survives_retirement(self, stressed):
        """Every LPN the trace wrote still resolves through the mapping."""
        sim, result = stressed
        assert sim.controller.mapped_pages() > 0
        assert result.requests == 3600


class TestFailedReads:
    def test_unrecoverable_reads_surface_not_crash(self, small_config):
        sim = SSDSimulator(
            small_config,
            shared_sets(small_config),
            record_latencies=True,
            faults=FaultConfig(seed=11, read_ber=0.9, max_read_retries=1),
        )
        result = sim.run(mixed_requests(write_ratio_even=0.1))
        assert result.failed_reads > 0
        assert result.failed_reads <= sim.faults.unrecoverable_reads
        # Failed requests are counted but excluded from latency stats.
        assert result.requests == 800
        assert result.read.count + result.write.count + result.failed_reads == 800
        assert "failed reads" in result.summary()


class TestKeeperDegradation:
    WINDOW_US = 20_000.0

    def _keeper(self, allocator, config, **kwargs):
        return SSDKeeper(
            allocator,
            config,
            collect_window_us=self.WINDOW_US,
            intensity_quantum=50.0,
            **kwargs,
        )

    def test_nan_prediction_triggers_exactly_one_fallback(self, small_config):
        allocator = make_allocator()
        # Botched deployment: first-layer weights are NaN.
        allocator.learner.network.layers[0].weight[:] = np.nan
        obs = Observability()
        keeper = self._keeper(allocator, small_config, obs=obs)
        run = keeper.run(mixed_requests())
        assert run.switched
        assert run.fallback_reason is not None
        assert "unhealthy prediction" in run.fallback_reason
        assert run.strategy.kind is StrategyKind.SHARED
        assert obs.registry.counter("keeper.fallbacks").value == 1
        assert len(obs.trace.events("keeper_fallback")) == 1
        assert obs.decisions[-1].fallback_reason == run.fallback_reason

    def test_healthy_model_does_not_fall_back(self, small_config):
        obs = Observability()
        keeper = self._keeper(make_allocator(), small_config, obs=obs)
        run = keeper.run(mixed_requests())
        assert run.switched
        assert run.fallback_reason is None
        assert obs.registry.counter("keeper.fallbacks").value == 0
        assert not obs.trace.events("keeper_fallback")

    def test_failing_channel_triggers_fallback(self, small_config):
        obs = Observability()
        keeper = self._keeper(
            make_allocator(),
            small_config,
            obs=obs,
            faults=FaultConfig(seed=13, read_ber=0.9, max_read_retries=2),
            fallback_error_rate=0.5,
        )
        run = keeper.run(mixed_requests(write_ratio_even=0.2))
        assert run.switched
        assert run.fallback_reason is not None
        assert "error rate" in run.fallback_reason
        assert run.strategy.kind is StrategyKind.SHARED
        assert len(obs.trace.events("keeper_fallback")) == 1

    def test_fallback_threshold_validated(self, small_config):
        with pytest.raises(ValueError, match="fallback_error_rate"):
            self._keeper(make_allocator(), small_config, fallback_error_rate=0.0)

    def test_periodic_fallback_uses_last_known_good(self, small_config):
        """After one healthy window, degraded windows redeploy its strategy."""
        allocator = make_allocator(label=8)
        obs = Observability()
        keeper = self._keeper(allocator, small_config, obs=obs)
        original = allocator.prediction_health
        calls = {"n": 0}

        def health(features):
            calls["n"] += 1
            if calls["n"] > 1:  # healthy first window, degraded after
                return "non-finite network output"
            return original(features)

        allocator.prediction_health = health
        run = keeper.run_periodic(mixed_requests(total=1600))
        assert run.switches >= 2
        first = run.decisions[0][2]
        assert first.kind is not StrategyKind.SHARED  # the model really chose
        for _, _, strategy in run.decisions[1:]:
            assert strategy.label == first.label  # last known good, not Shared
        fallbacks = [d for d in obs.decisions if d.fallback_reason]
        assert len(fallbacks) == len(run.decisions) - 1
