"""Fleet observability acceptance: zero perturbation, exact federation,
migration-span semantics, and the byte-identical report contract."""

import json

import pytest

from repro.harness.fleetlab import (
    build_fleet_scenario,
    default_migration,
    run_fleet,
)
from repro.obs.fleet import merge_histograms
from repro.ssd.fleet import Fleet, seeded_placement
from repro.ssd.simulator import SSDSimulator

DEVICES = 3
TENANTS = 6
REQUESTS = 400
SEED = 21


@pytest.fixture(scope="module")
def armed_run():
    """One observed fleet run: result, observer, report."""
    return run_fleet(
        n_devices=DEVICES, n_tenants=TENANTS,
        total_requests=REQUESTS, seed=SEED,
    )


def bare_fleet(record_latencies=True):
    """The same scenario with no observability plane attached."""
    traces, config, sets = build_fleet_scenario(
        n_devices=DEVICES, n_tenants=TENANTS,
        total_requests=REQUESTS, seed=SEED,
    )
    sims = [
        SSDSimulator(config, sets, record_latencies=record_latencies)
        for _ in range(DEVICES)
    ]
    placement = seeded_placement(TENANTS, DEVICES, SEED)
    fleet = Fleet(sims, placement=placement, seed=SEED)
    plan = default_migration(traces, placement, DEVICES)
    return fleet, traces, [plan] if plan is not None else []


class TestZeroPerturbation:
    def test_armed_and_unarmed_summaries_byte_identical(self, armed_run):
        """Attaching the full fleet observability plane must not perturb
        any device's simulated outcome."""
        armed_result, _, _ = armed_run
        fleet, traces, migrations = bare_fleet()
        unarmed_result = fleet.run(traces, migrations)
        assert [r.summary() for r in armed_result.results] == [
            r.summary() for r in unarmed_result.results
        ]
        assert armed_result.completions == unarmed_result.completions
        assert armed_result.makespan_us == unarmed_result.makespan_us


class TestExactFederation:
    def test_rollup_histograms_equal_manual_merge(self, armed_run):
        """The federated fleet histograms agree exactly — bucket counts,
        totals and extrema — with a by-hand merge of the per-device
        registries."""
        _, observer, _ = armed_run
        merged = observer.registry.federate()
        for name in ("sim.read_latency_us", "sim.write_latency_us"):
            parts = [
                reg.get(name)
                for reg in observer.registry.devices.values()
                if reg.get(name) is not None
            ]
            assert parts, f"no device recorded {name}"
            manual = merge_histograms(name, parts)
            out = merged.get(name)
            assert out.counts == manual.counts
            assert out.count == manual.count
            assert out.total == manual.total
            assert out.min == manual.min
            assert out.max == manual.max

    def test_fleet_counters_cover_every_request(self, armed_run):
        result, observer, report = armed_run
        counters = report["rollup"]["counters"]
        assert counters["fleet.requests"] == REQUESTS
        assert counters["fleet.requests"] == sum(
            r.requests for r in result.results
        )
        assert counters["fleet.devices"] == DEVICES
        assert counters["fleet.migrations"] == len(result.migrations)


class TestMigrationSpan:
    def test_span_equals_drain_to_first_destination_completion(self):
        """The recorded migration span must equal the gap between
        drain-start and the first completion of the migrated tenant on
        the destination device, measured by an independent completion
        log (within 1e-6 us)."""
        fleet, traces, migrations = bare_fleet()
        completions = []
        fleet.on_complete = lambda dev, req: completions.append(
            (dev, req.workload_id, req.complete_us)
        )
        result = fleet.run(traces, migrations)
        [rec] = result.migrations
        dst_times = [
            t for dev, tenant, t in completions
            if dev == rec.dst and tenant == rec.tenant and t >= rec.start_us
        ]
        assert dst_times, "migrated tenant never completed on destination"
        expected_span = min(dst_times) - rec.start_us
        assert rec.span_us == pytest.approx(expected_span, abs=1e-6)
        assert rec.first_dst_complete_us == pytest.approx(
            min(dst_times), abs=1e-6
        )

    def test_trace_span_matches_record(self, armed_run):
        result, observer, _ = armed_run
        [rec] = result.migrations
        [event] = observer.trace.events("tenant_migration")
        assert event.ts_us == pytest.approx(rec.start_us, abs=1e-6)
        assert event.dur_us == pytest.approx(rec.span_us, abs=1e-6)
        assert event.args["src"] == rec.src
        assert event.args["dst"] == rec.dst

    def test_conservation_across_migration(self, armed_run):
        result, _, _ = armed_run
        traces, _, _ = build_fleet_scenario(
            n_devices=DEVICES, n_tenants=TENANTS,
            total_requests=REQUESTS, seed=SEED,
        )
        [rec] = result.migrations
        assert result.tenant_completions(rec.tenant) == len(traces[rec.tenant])
        assert result.completions[rec.src].get(rec.tenant, 0) > 0
        assert result.completions[rec.dst].get(rec.tenant, 0) > 0


class TestByteIdenticalReports:
    def test_two_invocations_identical(self, armed_run):
        _, _, first = armed_run
        _, _, second = run_fleet(
            n_devices=DEVICES, n_tenants=TENANTS,
            total_requests=REQUESTS, seed=SEED,
        )
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_armed_slo_run_is_also_deterministic(self):
        from repro.harness.fleetlab import _tight_slo_dict

        slo = _tight_slo_dict(range(TENANTS))
        docs = [
            run_fleet(
                n_devices=DEVICES, n_tenants=TENANTS,
                total_requests=REQUESTS, seed=SEED, slo_dict=slo,
            )[2]
            for _ in range(2)
        ]
        assert json.dumps(docs[0], sort_keys=True) == json.dumps(
            docs[1], sort_keys=True
        )
        assert docs[0]["rollup"]["slo"]["page_alerts"] >= 1
