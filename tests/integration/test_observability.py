"""Observability threaded through the whole stack (acceptance tests).

One instrumented run must produce a consistent structured trace
(acquire/release discipline), publishable metrics, a per-channel
utilization profile, and all three exports (JSONL, Chrome trace,
metrics JSON); the keeper must log its switch at exactly the simulated
time the reallocation took effect; and the disabled path must leave
simulation results bit-identical.
"""

import json

import numpy as np
import pytest

from repro.core import (
    ChannelAllocator,
    Dataset,
    FeatureVector,
    SSDKeeper,
    StrategyLearner,
    StrategySpace,
)
from repro.obs import Observability, match_pairs
from repro.ssd import SSDConfig, SSDSimulator
from repro.ssd.fastmodel import fast_simulate
from repro.workloads import WorkloadSpec, synthesize_mix


def mixed_trace(total=600, seed=0):
    specs = [
        WorkloadSpec(
            name=f"t{i}",
            write_ratio=1.0 if i % 2 == 0 else 0.0,
            rate_rps=5000.0,
            footprint_pages=4096,
        )
        for i in range(4)
    ]
    return synthesize_mix(specs, total_requests=total, seed=seed).requests


def shared_sets(config):
    return {w: tuple(range(config.channels)) for w in range(4)}


def trained_allocator(label=8, seed=0):
    rng = np.random.default_rng(seed)
    space = StrategySpace(8, 4)
    rows = [
        FeatureVector(
            int(rng.integers(0, 20)),
            tuple(int(rng.integers(0, 2)) for _ in range(4)),
            tuple(rng.dirichlet(np.ones(4))),
        ).to_array()
        for _ in range(80)
    ]
    ds = Dataset(
        features=np.vstack(rows), labels=np.full(80, label), n_classes=len(space)
    )
    learner = StrategyLearner(space, seed=0)
    learner.train(ds, iterations=30, seed=0)
    return ChannelAllocator(learner)


@pytest.fixture(scope="module")
def instrumented_run():
    """One fully-instrumented simulation shared by the trace assertions."""
    config = SSDConfig.small()
    obs = Observability(
        trace_capacity=200_000, utilization_interval_us=500.0
    )
    sim = SSDSimulator(
        config, shared_sets(config), record_latencies=True, obs=obs
    )
    result = sim.run(mixed_trace())
    return config, obs, result


class TestTraceDiscipline:
    def test_channel_acquire_release_pairs_match(self, instrumented_run):
        _, obs, _ = instrumented_run
        events = obs.trace.events()
        acquires = [e for e in events if e.name == "channel_acquire"]
        releases = [e for e in events if e.name == "channel_release"]
        assert acquires, "tracing recorded no channel activity"
        assert len(acquires) == len(releases)
        pairs = match_pairs(events, "channel_acquire", "channel_release")
        assert len(pairs) == len(acquires)
        for start, end in pairs:
            assert start.track == end.track
            # release happens exactly when the booked service time elapses
            assert end.ts_us == pytest.approx(start.ts_us + start.dur_us)

    def test_die_acquire_release_pairs_match(self, instrumented_run):
        _, obs, _ = instrumented_run
        events = obs.trace.events()
        pairs = match_pairs(events, "die_acquire", "die_release")
        assert len(pairs) == len(
            [e for e in events if e.name == "die_acquire"]
        )

    def test_every_request_submitted_and_dispatched(self, instrumented_run):
        _, obs, result = instrumented_run
        submits = obs.trace.events("request_submit")
        dispatches = obs.trace.events("subrequest_dispatch")
        assert len(submits) == result.requests
        assert len(dispatches) == result.subrequests

    def test_trace_not_truncated(self, instrumented_run):
        _, obs, _ = instrumented_run
        assert obs.trace.evicted == 0
        assert obs.trace.offered == len(obs.trace.events())


class TestMetricsPublication:
    def test_simulator_counters_match_result(self, instrumented_run):
        _, obs, result = instrumented_run
        snap = obs.registry.snapshot()
        assert snap["counters"]["sim.requests"] == result.requests
        assert snap["counters"]["sim.subrequests"] == result.subrequests
        assert snap["gauges"]["sim.makespan_us"] == result.makespan_us

    def test_latency_histogram_counts_every_read(self, instrumented_run):
        _, obs, result = instrumented_run
        hist = obs.registry.get("sim.read_latency_us")
        assert hist.count == result.read.count
        # bucket-estimated percentiles bracket the exact sample percentiles
        assert hist.max == pytest.approx(result.read.max_us)
        assert hist.mean == pytest.approx(result.read.mean_us)

    def test_utilization_profile_recorded(self, instrumented_run):
        config, obs, result = instrumented_run
        profiler = obs.profiler
        assert profiler is not None
        assert profiler.samples >= 2
        assert all(len(r) == config.channels for r in profiler.channel_busy)
        # some channel saw traffic in some window
        assert max(max(r) for r in profiler.channel_busy) > 0.0
        assert profiler.times_us[-1] <= result.makespan_us + profiler.interval_us


class TestExports:
    def test_one_run_exports_all_three_artifacts(
        self, instrumented_run, tmp_path
    ):
        _, obs, _ = instrumented_run
        jsonl = tmp_path / "trace.jsonl"
        chrome = tmp_path / "trace.chrome.json"
        metrics = tmp_path / "metrics.json"

        assert obs.trace.write_jsonl(jsonl) == len(obs.trace.events())
        assert obs.write_chrome_trace(chrome) > 0
        metrics.write_text(json.dumps(obs.export()))

        lines = [json.loads(l) for l in jsonl.read_text().splitlines()]
        assert {e["name"] for e in lines} >= {
            "request_submit",
            "subrequest_dispatch",
            "channel_acquire",
            "channel_release",
        }
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"], "chrome trace is empty"
        exported = json.loads(metrics.read_text())
        assert exported["utilization"]["channel_busy"]
        assert "sim.read_latency_us" in exported["histograms"]


class TestDisabledPath:
    def test_obs_none_gives_identical_results(self):
        config = SSDConfig.small()
        trace = mixed_trace(total=300, seed=1)
        plain = SSDSimulator(config, shared_sets(config)).run(list(trace))
        obs = Observability(utilization_interval_us=250.0)
        traced = SSDSimulator(config, shared_sets(config), obs=obs).run(
            list(trace)
        )
        assert plain.total_latency_us == traced.total_latency_us
        assert plain.requests == traced.requests
        assert plain.read.count == traced.read.count
        # profiler may extend the loop past the last completion, never shrink
        assert traced.makespan_us >= plain.makespan_us

    def test_metrics_only_mode_records_no_events(self):
        config = SSDConfig.small()
        obs = Observability(trace=False)
        SSDSimulator(config, shared_sets(config), obs=obs).run(
            mixed_trace(total=100, seed=2)
        )
        assert len(obs.trace.events()) == 0
        assert obs.registry.snapshot()["counters"]["sim.requests"] == 100


class TestKeeperDecisionLogging:
    @pytest.fixture(scope="class")
    def keeper_run(self):
        obs = Observability(trace_capacity=200_000)
        keeper = SSDKeeper(
            trained_allocator(label=8),
            SSDConfig.small(),
            collect_window_us=20_000.0,
            intensity_quantum=50.0,
            obs=obs,
        )
        run = keeper.run(mixed_trace())
        return obs, run

    def test_switch_event_timestamp_matches_run(self, keeper_run):
        obs, run = keeper_run
        assert run.switched
        switches = obs.trace.events("keeper_switch")
        assert len(switches) == 1
        assert switches[0].ts_us == run.switched_at_us
        assert switches[0].args["strategy"] == run.strategy.label

    def test_decision_record_carries_features_and_latencies(self, keeper_run):
        obs, run = keeper_run
        assert len(obs.decisions) == 1
        decision = obs.decisions[0]
        assert decision.strategy == run.strategy.label
        assert decision.time_us == run.switched_at_us
        assert decision.window_requests > 0
        assert decision.predicted_mean_us > 0
        assert decision.realised_mean_us == pytest.approx(
            run.result.mean_total_us
        )
        doc = decision.to_dict()
        assert len(doc["features"]) == 9

    def test_switch_counter_published(self, keeper_run):
        obs, _ = keeper_run
        assert obs.registry.snapshot()["counters"]["keeper.switches"] == 1


class TestFastModelInstrumentation:
    def test_fast_model_publishes_into_same_registry(self):
        config = SSDConfig.small()
        obs = Observability(trace=False)
        trace = mixed_trace(total=200, seed=3)
        result = fast_simulate(
            trace, config, shared_sets(config), obs=obs
        )
        snap = obs.registry.snapshot()
        assert snap["counters"]["fastmodel.requests"] == 200
        hist = snap["histograms"]["fastmodel.read_latency_us"]
        assert hist["count"] == result.read.count


class TestTrainingInstrumentation:
    def test_trainer_publishes_epoch_series(self):
        from repro.nn.network import MLP
        from repro.nn.training import train

        rng = np.random.default_rng(0)
        x = rng.normal(size=(48, 4))
        y = (x.sum(axis=1) > 0).astype(int)
        obs = Observability(trace=False)
        net = MLP([4, 8, 2], seed=0)
        history = train(
            net, x, y, iterations=5, batch_size=16, seed=0, obs=obs,
            x_test=x, y_test=y,
        )
        snap = obs.registry.snapshot()
        assert snap["counters"]["train.epochs"] == history.iterations
        assert snap["series"]["train.loss"]["values"] == history.loss
        assert (
            snap["series"]["train.test_accuracy"]["values"]
            == history.test_accuracy
        )
        assert len(snap["series"]["train.lr"]["values"]) == history.iterations
        assert snap["gauges"]["train.time_ms"] == history.training_time_ms
