"""The stack generalises beyond the paper's 8-channel / 4-tenant setting.

The paper fixes Table I's geometry; a reusable library must not.  These
tests run the full pipeline pieces on other channel counts, tenant counts
and hierarchies.
"""

import numpy as np
import pytest

from repro.core import LabelerConfig, StrategySpace, enumerate_strategies, label_sample
from repro.ssd import IORequest, OpType, SSDConfig, fast_simulate, simulate


class TestStrategySpaces:
    def test_sixteen_channel_four_tenants(self):
        space = StrategySpace(16, 4)
        # Shared + Isolated + (15 two-part - equal) + (C(15,3) four-part - equal)
        assert len(space) == 2 + 14 + (455 - 1)
        sets = space.by_label("13:1:1:1").channel_sets(16, [True] * 4)
        assert len(sets[0]) == 13

    def test_two_tenants_on_four_channels(self):
        space = StrategySpace(4, 2)
        assert [s.label for s in space] == ["Shared", "Isolated", "3:1", "1:3"]

    def test_odd_channel_count(self):
        # 7 channels: no equal two-part split exists; Isolated needs
        # divisibility and should raise when asked for concrete sets.
        strategies = enumerate_strategies(7, 2)
        labels = [s.label for s in strategies]
        assert "3:4" in labels and "4:3" in labels
        with pytest.raises(ValueError):
            strategies[1].channel_sets(7, [True, False])  # Isolated, 7 % 2 != 0

    def test_eight_tenants_isolated(self):
        space = StrategySpace(8, 8)
        sets = space.isolated.channel_sets(8, [True] * 8)
        assert all(len(chs) == 1 for chs in sets.values())


class TestOtherDevices:
    @pytest.fixture
    def wide_config(self):
        """4 channels, 4 chips each, 2 dies per chip."""
        return SSDConfig(
            channels=4,
            chips_per_channel=4,
            dies_per_chip=2,
            planes_per_die=2,
            blocks_per_plane=32,
            pages_per_block=64,
        )

    def test_simulation_on_wide_device(self, wide_config):
        reqs = [
            IORequest(arrival_us=float(i) * 30, workload_id=i % 2,
                      op=OpType(i % 2), lpn=i * 3, length=2)
            for i in range(200)
        ]
        sets = {0: [0, 1], 1: [2, 3]}
        result = simulate(reqs, wide_config, sets)
        assert result.requests == 200
        assert wide_config.dies == 32

    def test_engines_agree_on_wide_device(self, wide_config):
        rng = np.random.default_rng(5)
        reqs = [
            IORequest(
                arrival_us=float(i) * 400,
                workload_id=0,
                op=OpType(int(rng.integers(0, 2))),
                lpn=int(rng.integers(0, 1024)),
            )
            for i in range(80)
        ]
        sets = {0: [0, 1, 2, 3]}
        exact = simulate(list(reqs), wide_config, sets)
        approx = fast_simulate(
            [IORequest(r.arrival_us, 0, r.op, r.lpn) for r in reqs],
            wide_config, sets,
        )
        assert approx.total_latency_us == pytest.approx(
            exact.total_latency_us, rel=0.02
        )

    def test_labeling_on_two_tenant_space(self):
        cfg = LabelerConfig(
            ssd=SSDConfig.small(),
            n_tenants=2,
            window_requests_max=200,
            window_s=0.02,
            replications=1,
        )
        space = StrategySpace(8, 2)
        sample = label_sample(cfg, np.random.default_rng(1), space)
        assert 0 <= sample.label < 8
        assert len(sample.total_latencies_us) == 8
        assert sample.features.dimensions == 5  # 1 + 2*2


class TestSingleChannelDegenerate:
    def test_one_channel_device_serialises_everything(self):
        config = SSDConfig(
            channels=1, chips_per_channel=1, dies_per_chip=1,
            planes_per_die=2, blocks_per_plane=16, pages_per_block=16,
        )
        reqs = [
            IORequest(arrival_us=0.0, workload_id=0, op=OpType.READ, lpn=i)
            for i in range(8)
        ]
        result = simulate(reqs, config, {0: [0]})
        # All eight reads share one die: completion is fully serial.
        assert result.read.max_us > 7 * config.read_latency_us
