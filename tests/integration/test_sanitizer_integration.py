"""Sanitizer end to end: a GC-heavy faulted run passes every invariant check,
and the sanitizer never perturbs the simulated outcome."""

import pytest

from repro.analysis import Sanitizer
from repro.ssd import FaultConfig, SSDConfig, SSDSimulator, simulate
from repro.workloads import WorkloadSpec, synthesize_mix

FAULTS = FaultConfig(
    seed=99,
    read_ber=0.05,
    program_fail_rate=0.003,
    erase_fail_rate=0.2,
    wear_coupling=0.1,
    max_read_retries=2,
)


def gc_config() -> SSDConfig:
    """Small planes: a few thousand writes overwrite the footprint many
    times over, so GC and block retirement both trigger."""
    return SSDConfig(
        channels=8,
        chips_per_channel=2,
        dies_per_chip=1,
        planes_per_die=2,
        blocks_per_plane=16,
        pages_per_block=8,
    )


def two_tenant_trace(total=3600, seed=3):
    specs = [
        WorkloadSpec(
            name="writer", write_ratio=0.9, rate_rps=5000.0, footprint_pages=300
        ),
        WorkloadSpec(
            name="reader", write_ratio=0.3, rate_rps=5000.0, footprint_pages=300
        ),
    ]
    return synthesize_mix(specs, total_requests=total, seed=seed).requests


def split_sets(config):
    half = config.channels // 2
    return {0: list(range(half)), 1: list(range(half, config.channels))}


class TestFullRunUnderSanitizer:
    @pytest.fixture(scope="class")
    def sanitized(self):
        config = gc_config()
        sanitizer = Sanitizer()
        sim = SSDSimulator(
            config, split_sets(config), faults=FAULTS, sanitizer=sanitizer
        )
        result = sim.run(two_tenant_trace())
        return sim, result, sanitizer

    def test_run_completes_with_gc_and_faults(self, sanitized):
        sim, result, _ = sanitized
        assert result.requests == 3600
        assert sim.controller.gc.collections > 0
        assert sim.faults.retired_blocks > 0

    def test_every_check_family_exercised(self, sanitized):
        _, _, sanitizer = sanitized
        stats = sanitizer.stats()
        assert stats["events_checked"] > 0
        assert stats["grants_checked"] > 0
        assert stats["mapping_ops"] > 0
        assert stats["conservation_checks"] > 0  # GC/retire sweeps ran

    def test_sanitizer_does_not_perturb_results(self, sanitized):
        """Byte-identical summary with the sanitizer on vs off."""
        _, with_sanitizer, _ = sanitized
        config = gc_config()
        without = simulate(
            two_tenant_trace(), config, split_sets(config), faults=FAULTS
        )
        assert with_sanitizer.summary() == without.summary()
        assert with_sanitizer.total_latency_us == without.total_latency_us
        assert with_sanitizer.makespan_us == without.makespan_us

    def test_convenience_wrapper_accepts_sanitizer(self):
        config = gc_config()
        sanitizer = Sanitizer()
        result = simulate(
            two_tenant_trace(total=400),
            config,
            split_sets(config),
            faults=FAULTS,
            sanitizer=sanitizer,
        )
        assert result.requests == 400
        assert sanitizer.stats()["events_checked"] > 0
