"""End-to-end telemetry, SLO watchdog, and flight recorder on seeded runs.

The acceptance contract for the live-telemetry pillar:

* **zero perturbation** — a telemetry+SLO-armed run's latency summary is
  byte-identical to an unarmed run's (weak sampler ticks never extend
  the makespan, the watchdog schedules nothing);
* a deliberately tight SLO pages **deterministically** on the seeded
  GC-heavy scenario and hands the flight recorder a bundle whose
  recorded replay command reproduces the run;
* sanitizer invariant violations and unrecoverable reads each dump
  their own trigger-named bundle.
"""

import json

import pytest

from repro.analysis.sanitizer import SanitizerError
from repro.obs import FlightRecorder, Observability, SloSpec
from repro.ssd import FaultConfig, SSDConfig, simulate
from repro.ssd.simulator import SSDSimulator
from repro.workloads import WorkloadSpec, synthesize_mix

from .test_attribution import gc_fault_scenario


def loose_spec():
    """examples/slo.json-shaped spec that the seeded run satisfies."""
    return SloSpec.from_dict({
        "window_us": 500.0,
        "tenants": {
            "0": {"read_p95_us": 50000.0, "write_p95_us": 100000.0},
            "1": {"read_p95_us": 50000.0, "write_p95_us": 100000.0},
        },
        "failed_read_budget": 0.5,
        "gc_stall_fraction": 0.95,
    })


def tight_spec():
    """Unattainable write-latency target: pages on any GC-heavy run."""
    return SloSpec.from_dict({
        "window_us": 500.0,
        "tenants": {"0": {"write_p95_us": 10.0}},
        "burn": {
            "fast": {"windows": 2, "warn_burn": 1.5, "page_burn": 3.0},
            "slow": {"windows": 6, "warn_burn": 1.0, "page_burn": 2.0},
        },
    })


class TestZeroPerturbation:
    def test_summary_byte_identical_with_telemetry_and_slo_on(self):
        requests, config, sets, faults = gc_fault_scenario()
        plain = simulate(requests, config, sets, record_latencies=True,
                         faults=faults)
        obs = Observability(slo=loose_spec())
        armed = simulate(requests, config, sets, record_latencies=True,
                         obs=obs, faults=faults)
        assert armed.summary() == plain.summary()
        assert armed.makespan_us == plain.makespan_us
        assert len(obs.telemetry.windows) > 10
        # the loose spec really was evaluated, and held
        assert obs.slo.windows_evaluated == len(obs.telemetry.windows)
        assert armed.alerts == []

    def test_telemetry_windows_tile_the_run(self):
        requests, config, sets, faults = gc_fault_scenario()
        obs = Observability(telemetry=500.0)
        result = simulate(requests, config, sets, obs=obs, faults=faults)
        windows = obs.telemetry.windows
        assert windows[0]["t_start_us"] == 0.0
        assert windows[-1]["t_end_us"] == result.makespan_us
        for prev, cur in zip(windows, windows[1:]):
            assert cur["t_start_us"] == prev["t_end_us"]
        # deltas reassemble into the end-of-run totals
        assert sum(
            w["counters"].get("sim.requests", 0) for w in windows
        ) == result.requests


class TestTightSloPages:
    def test_page_alert_and_bundle_fire_deterministically(self, tmp_path):
        requests, config, sets, faults = gc_fault_scenario()
        rec = FlightRecorder(
            tmp_path, context={"scenario": "gc_fault"},
            replay_argv=["python", "-m", "repro", "stats", "--scale", "smoke"],
        )
        obs = Observability(slo=tight_spec(), flight_recorder=rec)
        result = simulate(requests, config, sets, record_latencies=True,
                          obs=obs, faults=faults)
        assert any(a["severity"] == "page" for a in result.alerts)
        assert [b.name for b in rec.bundles] == ["bundle-00-slo-page"]
        manifest = json.loads((rec.bundles[0] / "manifest.json").read_text())
        assert manifest["trigger"] == "slo-page"
        assert manifest["replay"]["command"].startswith("python -m repro")
        alerts = json.loads((rec.bundles[0] / "alerts.json").read_text())
        assert alerts["triggering"]["objective"] == "tenant0.write_p95_us"

    def test_alerts_are_deterministic_across_replays(self):
        requests, config, sets, faults = gc_fault_scenario()

        def alert_stream():
            obs = Observability(slo=tight_spec())
            simulate(requests, config, sets, record_latencies=True,
                     obs=obs, faults=faults)
            return [a.to_dict() for a in obs.slo.alerts]

        first, second = alert_stream(), alert_stream()
        assert first and first == second


class TestFailureTriggers:
    def test_unrecoverable_read_dumps_a_bundle(self, tmp_path):
        config = SSDConfig(blocks_per_plane=6, pages_per_block=16)
        specs = [
            WorkloadSpec(name="reader", write_ratio=0.1, rate_rps=3000.0,
                         footprint_pages=200),
        ]
        requests = synthesize_mix(specs, total_requests=600, seed=11).requests
        faults = FaultConfig(seed=3, read_ber=0.6, max_read_retries=1)
        obs = Observability(flight_recorder=tmp_path / "flight")
        result = simulate(requests, config, {0: [0, 1]}, obs=obs,
                          faults=faults)
        assert result.failed_reads > 0
        names = [b.name for b in obs.flight_recorder.bundles]
        assert names == ["bundle-00-unrecoverable-read"]
        manifest = json.loads(
            (obs.flight_recorder.bundles[0] / "manifest.json").read_text()
        )
        assert "lpn=" in manifest["detail"]

    def test_sanitizer_invariant_dumps_a_bundle(self, tmp_path):
        config = SSDConfig.small()
        specs = [
            WorkloadSpec(name="w", write_ratio=0.5, rate_rps=2000.0,
                         footprint_pages=64),
        ]
        requests = synthesize_mix(specs, total_requests=50, seed=2).requests
        obs = Observability(flight_recorder=tmp_path / "flight")
        sim = SSDSimulator(config, {0: [0, 1]}, obs=obs)

        def trip():
            raise SanitizerError(
                "event-time-monotonicity", "synthetic trip", []
            )

        sim.loop.schedule(1.0, trip)
        with pytest.raises(SanitizerError):
            sim.run(requests)
        names = [b.name for b in obs.flight_recorder.bundles]
        assert names == ["bundle-00-sanitizer-invariant"]
        manifest = json.loads(
            (obs.flight_recorder.bundles[0] / "manifest.json").read_text()
        )
        assert "synthetic trip" in manifest["detail"]
