"""Trace files drive the simulator identically to in-memory traces."""

import pytest

from repro.ssd import simulate
from repro.workloads import WorkloadSpec, generate, traces


class TestTraceDrivenSimulation:
    def test_file_trace_reproduces_in_memory_results(self, tmp_path, small_config):
        spec = WorkloadSpec(
            name="t", write_ratio=0.4, rate_rps=20_000, footprint_pages=4096
        )
        reqs = generate(spec, 400, workload_id=0, seed=9)
        path = tmp_path / "trace.csv"
        traces.dump(reqs, path, precision=6)
        loaded = traces.load(path)

        sets = {0: list(range(small_config.channels))}
        direct = simulate(reqs, small_config, sets)
        from_file = simulate(loaded, small_config, sets)

        assert from_file.requests == direct.requests
        assert from_file.total_latency_us == pytest.approx(
            direct.total_latency_us, rel=1e-6
        )
        assert from_file.read.count == direct.read.count
        assert from_file.gc_collections == direct.gc_collections

    def test_multi_tenant_trace_roundtrip(self, tmp_path, small_config):
        specs = [
            WorkloadSpec(name="a", write_ratio=1.0, rate_rps=5000, footprint_pages=2048),
            WorkloadSpec(name="b", write_ratio=0.0, rate_rps=5000, footprint_pages=2048),
        ]
        reqs = sorted(
            generate(specs[0], 100, workload_id=0, seed=1)
            + generate(specs[1], 100, workload_id=1, seed=2),
            key=lambda r: r.arrival_us,
        )
        path = tmp_path / "mixed.csv"
        traces.dump(reqs, path, precision=6)
        loaded = traces.load(path)
        sets = {0: [0, 1, 2, 3], 1: [4, 5, 6, 7]}
        a = simulate(reqs, small_config, sets)
        b = simulate(loaded, small_config, sets)
        assert b.per_workload.keys() == a.per_workload.keys()
        assert b.total_latency_us == pytest.approx(a.total_latency_us, rel=1e-6)
