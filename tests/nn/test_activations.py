"""Activations: values, output-based derivatives, softmax properties."""

from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays
import numpy as np
import pytest

from repro.nn import Identity, Logistic, ReLU, Tanh, get_activation, softmax

FINITE = st.floats(-20, 20, allow_nan=False)


def numeric_derivative(act, x, eps=1e-6):
    return (act.forward(x + eps) - act.forward(x - eps)) / (2 * eps)


class TestValues:
    def test_relu(self):
        x = np.array([-2.0, 0.0, 3.0])
        assert np.array_equal(ReLU().forward(x), [0.0, 0.0, 3.0])

    def test_logistic_midpoint_and_saturation(self):
        act = Logistic()
        assert act.forward(np.array([0.0]))[0] == pytest.approx(0.5)
        assert act.forward(np.array([50.0]))[0] == pytest.approx(1.0)
        assert act.forward(np.array([-50.0]))[0] == pytest.approx(0.0)

    def test_logistic_extreme_inputs_are_finite(self):
        out = Logistic().forward(np.array([-1e9, 1e9]))
        assert np.all(np.isfinite(out))

    def test_tanh_and_identity(self):
        x = np.array([-1.0, 0.0, 1.0])
        assert np.allclose(Tanh().forward(x), np.tanh(x))
        assert np.array_equal(Identity().forward(x), x)


class TestDerivatives:
    @pytest.mark.parametrize("act_cls", [Logistic, Tanh, Identity])
    def test_matches_numeric(self, act_cls):
        act = act_cls()
        x = np.linspace(-3, 3, 31)
        out = act.forward(x)
        analytic = act.backward(np.ones_like(x), out)
        numeric = numeric_derivative(act, x)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_relu_matches_numeric_away_from_kink(self):
        act = ReLU()
        x = np.array([-2.0, -0.5, 0.5, 2.0])
        out = act.forward(x)
        analytic = act.backward(np.ones_like(x), out)
        numeric = numeric_derivative(act, x)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_backward_scales_with_upstream_gradient(self):
        act = Logistic()
        x = np.array([0.3])
        out = act.forward(x)
        g1 = act.backward(np.array([1.0]), out)
        g3 = act.backward(np.array([3.0]), out)
        assert g3 == pytest.approx(3 * g1)


class TestRegistry:
    @pytest.mark.parametrize("name,cls", [("relu", ReLU), ("logistic", Logistic),
                                          ("tanh", Tanh), ("identity", Identity)])
    def test_lookup(self, name, cls):
        assert isinstance(get_activation(name), cls)

    def test_instance_passthrough(self):
        act = ReLU()
        assert get_activation(act) is act

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_activation("swish")


class TestSoftmax:
    @given(arrays(float, (4, 6), elements=FINITE))
    def test_rows_are_distributions(self, logits):
        probs = softmax(logits)
        assert np.all(probs >= 0)
        assert np.allclose(probs.sum(axis=1), 1.0)

    @given(arrays(float, (3, 5), elements=FINITE), st.floats(-5, 5))
    def test_shift_invariance(self, logits, shift):
        assert np.allclose(softmax(logits), softmax(logits + shift), atol=1e-9)

    def test_handles_huge_logits(self):
        probs = softmax(np.array([[1e4, 0.0]]))
        assert probs[0, 0] == pytest.approx(1.0)
        assert np.isfinite(probs).all()

    def test_argmax_preserved(self):
        logits = np.array([[1.0, 5.0, 2.0]])
        assert softmax(logits).argmax() == 1
