"""Finite-difference gradient checks for layers and the full network.

These are the tests that guarantee Equation 1's gradients — and therefore
the whole Figure-4 training reproduction — are computed correctly.
"""

import numpy as np
import pytest

from repro.nn import MLP, Dense


def network_numeric_grads(net, x, y, eps=1e-6):
    grads = []
    for param in net.parameters():
        grad = np.zeros_like(param)
        for idx in np.ndindex(*param.shape):
            original = param[idx]
            param[idx] = original + eps
            up = net.loss.value(net.forward(x), y)
            param[idx] = original - eps
            down = net.loss.value(net.forward(x), y)
            param[idx] = original
            grad[idx] = (up - down) / (2 * eps)
        grads.append(grad)
    return grads


class TestDenseBackward:
    @pytest.mark.parametrize("activation", ["identity", "logistic", "tanh"])
    def test_input_gradient_matches_numeric(self, activation, rng):
        layer = Dense(4, 3, activation, rng=rng)
        x = rng.normal(size=(2, 4))
        upstream = rng.normal(size=(2, 3))

        layer.forward(x, train=True)
        analytic = layer.backward(upstream)

        numeric = np.zeros_like(x)
        eps = 1e-6
        for idx in np.ndindex(*x.shape):
            plus = x.copy()
            minus = x.copy()
            plus[idx] += eps
            minus[idx] -= eps
            diff = (layer.forward(plus) - layer.forward(minus)) / (2 * eps)
            numeric[idx] = (diff * upstream).sum()
        assert np.allclose(analytic, numeric, atol=1e-4)

    def test_backward_requires_forward(self, rng):
        layer = Dense(2, 2, rng=rng)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_forward_rejects_wrong_width(self, rng):
        layer = Dense(3, 2, rng=rng)
        with pytest.raises(ValueError):
            layer.forward(np.ones((1, 4)))


class TestFullNetworkGradients:
    @pytest.mark.parametrize("activation", ["relu", "logistic", "tanh"])
    def test_all_parameter_gradients_match_numeric(self, activation, rng):
        net = MLP([5, 8, 4], hidden_activation=activation, seed=3)
        x = rng.normal(size=(6, 5))
        y = rng.integers(0, 4, size=6)

        net.train_batch(x, y)
        analytic = net.gradients()
        numeric = network_numeric_grads(net, x, y)

        for a, n in zip(analytic, numeric):
            assert np.allclose(a, n, atol=1e-4), (
                f"max abs err {np.abs(a - n).max()}"
            )

    def test_two_hidden_layer_gradients(self, rng):
        net = MLP([4, 6, 5, 3], hidden_activation="logistic", seed=7)
        x = rng.normal(size=(3, 4))
        y = rng.integers(0, 3, size=3)
        net.train_batch(x, y)
        for a, n in zip(net.gradients(), network_numeric_grads(net, x, y)):
            assert np.allclose(a, n, atol=1e-4)

    def test_gradient_descent_step_reduces_loss(self, rng):
        net = MLP([3, 16, 2], hidden_activation="logistic", seed=0)
        x = rng.normal(size=(20, 3))
        y = (x[:, 0] > 0).astype(int)
        before = net.loss.value(net.forward(x), y)
        for _ in range(20):
            net.train_batch(x, y)
            for p, g in zip(net.parameters(), net.gradients()):
                p -= 0.5 * g
        after = net.loss.value(net.forward(x), y)
        assert after < before
