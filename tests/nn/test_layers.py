"""Dense layer construction and bookkeeping (backward is covered in
test_gradients.py)."""

import numpy as np
import pytest

from repro.nn import Dense


class TestConstruction:
    def test_shapes(self, rng):
        layer = Dense(4, 3, rng=rng)
        assert layer.weight.shape == (3, 4)
        assert layer.bias.shape == (3,)
        assert layer.n_parameters == 15

    def test_bias_starts_at_zero(self, rng):
        assert not Dense(4, 3, rng=rng).bias.any()

    def test_he_bound_for_relu(self):
        rng = np.random.default_rng(0)
        layer = Dense(100, 50, "relu", rng=rng)
        bound = np.sqrt(6.0 / 100)
        assert np.abs(layer.weight).max() <= bound

    def test_glorot_bound_otherwise(self):
        rng = np.random.default_rng(0)
        layer = Dense(100, 50, "logistic", rng=rng)
        bound = np.sqrt(6.0 / 150)
        assert np.abs(layer.weight).max() <= bound

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ValueError):
            Dense(0, 3)
        with pytest.raises(ValueError):
            Dense(3, 0)

    def test_seeded_determinism(self):
        a = Dense(4, 3, rng=np.random.default_rng(7))
        b = Dense(4, 3, rng=np.random.default_rng(7))
        assert np.array_equal(a.weight, b.weight)


class TestForward:
    def test_linear_identity_layer(self, rng):
        layer = Dense(3, 2, "identity", rng=rng)
        x = rng.normal(size=(5, 3))
        expected = x @ layer.weight.T + layer.bias
        assert np.allclose(layer.forward(x), expected)

    def test_1d_input_promoted(self, rng):
        layer = Dense(3, 2, rng=rng)
        assert layer.forward(np.ones(3)).shape == (1, 2)

    def test_no_cache_without_train_flag(self, rng):
        layer = Dense(3, 2, rng=rng)
        layer.forward(np.ones((1, 3)))
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))

    def test_parameters_and_gradients_align(self, rng):
        layer = Dense(3, 2, rng=rng)
        layer.forward(np.ones((1, 3)), train=True)
        layer.backward(np.ones((1, 2)))
        for p, g in zip(layer.parameters(), layer.gradients()):
            assert p.shape == g.shape
