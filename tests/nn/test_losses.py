"""Losses: values and gradients against numeric differentiation."""

import numpy as np
import pytest

from repro.nn import MeanSquaredError, SoftmaxCrossEntropy, get_loss, one_hot


def numeric_grad(loss, logits, targets, eps=1e-6):
    grad = np.zeros_like(logits)
    for idx in np.ndindex(*logits.shape):
        plus = logits.copy()
        minus = logits.copy()
        plus[idx] += eps
        minus[idx] -= eps
        grad[idx] = (loss.value(plus, targets) - loss.value(minus, targets)) / (2 * eps)
    return grad


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_has_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[20.0, 0.0, 0.0]])
        assert loss.value(logits, np.array([0])) < 1e-6

    def test_uniform_prediction_is_log_k(self):
        loss = SoftmaxCrossEntropy()
        logits = np.zeros((2, 4))
        assert loss.value(logits, np.array([1, 3])) == pytest.approx(np.log(4))

    def test_accepts_one_hot_targets(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[1.0, 2.0, 0.5], [0.0, 0.1, 3.0]])
        labels = np.array([1, 2])
        assert loss.value(logits, labels) == pytest.approx(
            loss.value(logits, one_hot(labels, 3))
        )

    def test_rejects_wrong_one_hot_width(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            loss.value(np.zeros((1, 3)), np.zeros((1, 4)))

    def test_gradient_matches_numeric(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(5, 7))
        targets = rng.integers(0, 7, size=5)
        analytic = loss.backward(logits.copy(), targets)
        numeric = numeric_grad(loss, logits, targets)
        assert np.allclose(analytic, numeric, atol=1e-5)

    def test_gradient_rows_sum_to_zero(self, rng):
        loss = SoftmaxCrossEntropy()
        logits = rng.normal(size=(4, 6))
        grad = loss.backward(logits, rng.integers(0, 6, size=4))
        assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-12)


class TestMeanSquaredError:
    def test_zero_at_perfect_fit(self):
        loss = MeanSquaredError()
        pred = np.array([[1.0, 2.0]])
        assert loss.value(pred, pred) == 0.0

    def test_value(self):
        loss = MeanSquaredError()
        pred = np.array([[3.0]])
        target = np.array([[1.0]])
        assert loss.value(pred, target) == pytest.approx(2.0)  # 0.5 * 2^2

    def test_gradient_matches_numeric(self, rng):
        loss = MeanSquaredError()
        pred = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 3))
        analytic = loss.backward(pred, target)
        numeric = numeric_grad(loss, pred, target)
        assert np.allclose(analytic, numeric, atol=1e-5)


class TestRegistry:
    def test_lookup(self):
        assert isinstance(get_loss("mse"), MeanSquaredError)
        assert isinstance(get_loss("softmax_cross_entropy"), SoftmaxCrossEntropy)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_loss("hinge")
