"""Classification metrics."""

import numpy as np
import pytest

from repro.nn import (
    accuracy,
    classification_report,
    confusion_matrix,
    per_class_stats,
    top_k_accuracy,
)


class TestAccuracy:
    def test_exact_match(self):
        assert accuracy(np.array([0, 1, 2]), np.array([0, 1, 2])) == 1.0
        assert accuracy(np.array([0, 1, 2]), np.array([0, 0, 0])) == pytest.approx(1 / 3)

    def test_one_hot_targets(self):
        one_hot = np.eye(3)[[0, 2]]
        assert accuracy(np.array([0, 2]), one_hot) == 1.0

    def test_empty(self):
        assert accuracy(np.array([]), np.array([])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([0]), np.array([0, 1]))


class TestTopK:
    def test_k1_equals_accuracy(self, rng):
        logits = rng.normal(size=(20, 5))
        labels = rng.integers(0, 5, size=20)
        assert top_k_accuracy(logits, labels, 1) == pytest.approx(
            accuracy(logits.argmax(axis=1), labels)
        )

    def test_monotone_in_k(self, rng):
        logits = rng.normal(size=(50, 8))
        labels = rng.integers(0, 8, size=50)
        values = [top_k_accuracy(logits, labels, k) for k in (1, 2, 4, 8)]
        assert values == sorted(values)
        assert values[-1] == 1.0  # k = n_classes always hits

    def test_specific_case(self):
        logits = np.array([[0.1, 0.9, 0.5]])  # ranking: 1, 2, 0
        assert top_k_accuracy(logits, np.array([2]), 1) == 0.0
        assert top_k_accuracy(logits, np.array([2]), 2) == 1.0

    def test_k_larger_than_classes_clamped(self):
        logits = np.array([[1.0, 0.0]])
        assert top_k_accuracy(logits, np.array([1]), 10) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((2, 3)), np.zeros(2), 0)
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((2, 3)), np.zeros(3), 1)


class TestConfusionMatrix:
    def test_counts(self):
        m = confusion_matrix(np.array([0, 1, 1, 2]), np.array([0, 1, 2, 2]), 3)
        assert m[0, 0] == 1
        assert m[1, 1] == 1
        assert m[2, 1] == 1  # true 2 predicted 1
        assert m[2, 2] == 1
        assert m.sum() == 4

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([5]), np.array([0]), 3)


class TestPerClassStats:
    def test_perfect_classifier(self):
        m = np.diag([5, 3, 2])
        for s in per_class_stats(m):
            assert s.precision == 1.0
            assert s.recall == 1.0
            assert s.f1 == 1.0

    def test_known_values(self):
        # true 0: 2 correct, 1 predicted as 1; true 1: all correct (3)
        m = np.array([[2, 1], [0, 3]])
        stats = per_class_stats(m)
        assert stats[0].recall == pytest.approx(2 / 3)
        assert stats[0].precision == 1.0
        assert stats[1].precision == pytest.approx(3 / 4)
        assert stats[1].support == 3

    def test_zero_support_class(self):
        m = np.array([[1, 0], [0, 0]])
        stats = per_class_stats(m)
        assert stats[1].recall == 0.0
        assert stats[1].f1 == 0.0

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            per_class_stats(np.zeros((2, 3)))


class TestReport:
    def test_report_contains_classes_and_weighted_f1(self):
        m = np.diag([4, 6])
        text = classification_report(m, class_names=["Shared", "1:7"])
        assert "Shared" in text
        assert "1:7" in text
        assert "weighted-f1" in text

    def test_min_support_filters(self):
        m = np.diag([4, 0])
        text = classification_report(m, class_names=["a", "b"])
        assert "b" not in text.splitlines()[-2]
