"""MLP structure, the paper's 9-64-42 architecture, and cost model."""

import numpy as np
import pytest

from repro.nn import MLP, paper_network


class TestPaperNetwork:
    def test_architecture(self):
        net = paper_network()
        assert net.layer_sizes == [9, 64, 42]
        assert len(net.layers) == 2

    def test_storage_estimate_matches_section_iv_d(self):
        """16 bytes per neuron over hidden + output layers."""
        net = paper_network()
        assert net.storage_bytes() == 16 * (64 + 42) == 1696

    def test_multiply_estimate_matches_section_iv_d(self):
        """sum(N_i * N_{i+1}) forward multiplies."""
        net = paper_network()
        assert net.forward_multiplies() == 9 * 64 + 64 * 42 == 3264

    def test_parameter_count(self):
        net = paper_network()
        assert net.n_parameters == (9 * 64 + 64) + (64 * 42 + 42)


class TestForward:
    def test_logits_shape(self, rng):
        net = MLP([4, 8, 3], seed=0)
        out = net.forward(rng.normal(size=(5, 4)))
        assert out.shape == (5, 3)

    def test_single_vector_promoted_to_batch(self, rng):
        net = MLP([4, 8, 3], seed=0)
        assert net.forward(rng.normal(size=4)).shape == (1, 3)

    def test_predict_proba_rows_sum_to_one(self, rng):
        net = MLP([4, 8, 3], seed=0)
        probs = net.predict_proba(rng.normal(size=(6, 4)))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_predict_is_argmax(self, rng):
        net = MLP([4, 8, 3], seed=0)
        x = rng.normal(size=(6, 4))
        assert np.array_equal(net.predict(x), net.forward(x).argmax(axis=1))

    def test_deterministic_given_seed(self):
        a = MLP([3, 5, 2], seed=11)
        b = MLP([3, 5, 2], seed=11)
        x = np.ones((1, 3))
        assert np.allclose(a.forward(x), b.forward(x))

    def test_rejects_too_few_sizes(self):
        with pytest.raises(ValueError):
            MLP([5])


class TestEvaluate:
    def test_accuracy_on_separable_data(self, rng):
        net = MLP([2, 16, 2], hidden_activation="tanh", seed=0)
        x = rng.normal(size=(200, 2))
        y = (x[:, 0] > 0).astype(int)
        from repro.nn import Trainer

        Trainer(net, "adam", learning_rate=0.05, seed=0).fit(x, y, iterations=40)
        loss, acc = net.evaluate(x, y)
        assert acc > 0.95
        assert loss < 0.3

    def test_evaluate_accepts_one_hot(self, rng):
        from repro.nn import one_hot

        net = MLP([3, 4, 2], seed=0)
        x = rng.normal(size=(10, 3))
        y = rng.integers(0, 2, size=10)
        loss_int, acc_int = net.evaluate(x, y)
        loss_oh, acc_oh = net.evaluate(x, one_hot(y, 2))
        assert loss_int == pytest.approx(loss_oh)
        assert acc_int == acc_oh
