"""Optimizers: exact update rules and convergence behaviour."""

import numpy as np
import pytest

from repro.nn import SGD, AdaGrad, Adam, RMSProp, SGDMomentum, get_optimizer


def quadratic_descent(optimizer, start=5.0, steps=300):
    """Minimise f(w) = w^2 with the given optimizer; return |final w|."""
    w = np.array([start])
    for _ in range(steps):
        optimizer.step([w], [2 * w])
    return abs(float(w[0]))


class TestSGD:
    def test_exact_equation_one_update(self):
        """w := w - alpha * dC/dw, verbatim."""
        opt = SGD(learning_rate=0.1)
        w = np.array([1.0, 2.0])
        g = np.array([10.0, -20.0])
        opt.step([w], [g])
        assert np.allclose(w, [0.0, 4.0])

    def test_paper_default_learning_rate(self):
        assert SGD().learning_rate == 0.2

    def test_converges_on_quadratic(self):
        assert quadratic_descent(SGD(0.1)) < 1e-6


class TestSGDMomentum:
    def test_accumulates_velocity(self):
        opt = SGDMomentum(learning_rate=1.0, momentum=0.5)
        w = np.array([0.0])
        g = np.array([1.0])
        opt.step([w], [g])   # v = -1, w = -1
        opt.step([w], [g])   # v = -1.5, w = -2.5
        assert w[0] == pytest.approx(-2.5)

    def test_paper_momentum_value(self):
        assert SGDMomentum().momentum == 0.9

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            SGDMomentum(momentum=1.0)

    def test_faster_than_plain_sgd_on_ravine(self):
        # Ill-conditioned quadratic: momentum accelerates the slow axis.
        def run(opt, steps=120):
            w = np.array([5.0, 5.0])
            scales = np.array([1.0, 0.02])
            for _ in range(steps):
                opt.step([w], [2 * scales * w])
            return np.linalg.norm(w)

        assert run(SGDMomentum(0.1, 0.9)) < run(SGD(0.1))


class TestAdam:
    def test_first_step_size_is_learning_rate(self):
        # Bias correction makes the first step ~lr regardless of gradient scale.
        for scale in (1e-3, 1.0, 1e3):
            opt = Adam(learning_rate=0.02)
            w = np.array([1.0])
            opt.step([w], [np.array([scale])])
            assert w[0] == pytest.approx(1.0 - 0.02, rel=1e-4)

    def test_paper_default_learning_rate(self):
        assert Adam().learning_rate == 0.02

    def test_converges_on_quadratic(self):
        assert quadratic_descent(Adam(0.1), steps=600) < 1e-3

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
        with pytest.raises(ValueError):
            Adam(beta2=-0.1)


class TestAdaGradRMSProp:
    def test_adagrad_decreases_effective_rate(self):
        opt = AdaGrad(learning_rate=1.0)
        w = np.array([0.0])
        g = np.array([1.0])
        opt.step([w], [g])
        first = abs(w[0])
        w2 = np.array([0.0])
        opt2 = AdaGrad(learning_rate=1.0)
        for _ in range(10):
            opt2.step([w2], [g])
        # Ten steps move less than 10x the first step (accumulated scaling).
        assert abs(w2[0]) < 10 * first

    def test_rmsprop_converges_to_lr_neighbourhood(self):
        # RMSProp's normalised steps oscillate at ~lr around the optimum.
        assert quadratic_descent(RMSProp(0.05), steps=600) < 0.06

    def test_rmsprop_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            RMSProp(decay=1.5)


class TestCommon:
    @pytest.mark.parametrize("cls", [SGD, SGDMomentum, AdaGrad, RMSProp, Adam])
    def test_rejects_nonpositive_learning_rate(self, cls):
        with pytest.raises(ValueError):
            cls(learning_rate=0.0)

    def test_shape_mismatch_rejected(self):
        opt = SGD(0.1)
        with pytest.raises(ValueError):
            opt.step([np.zeros(3)], [np.zeros(4)])
        with pytest.raises(ValueError):
            opt.step([np.zeros(3)], [])

    def test_registry(self):
        assert isinstance(get_optimizer("sgd"), SGD)
        assert isinstance(get_optimizer("sgd-momentum"), SGDMomentum)
        assert isinstance(get_optimizer("adam", learning_rate=0.5), Adam)
        with pytest.raises(ValueError):
            get_optimizer("lion")

    def test_registry_passthrough(self):
        opt = Adam()
        assert get_optimizer(opt) is opt
