"""Scaler, one-hot, split, minibatches."""

from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays
import numpy as np
import pytest

from repro.nn import StandardScaler, minibatches, one_hot, train_test_split


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        x = rng.normal(loc=5, scale=3, size=(200, 4))
        z = StandardScaler().fit_transform(x)
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_passes_through(self):
        x = np.array([[1.0, 5.0], [1.0, 7.0]])
        z = StandardScaler().fit_transform(x)
        assert np.allclose(z[:, 0], 0.0)
        assert np.isfinite(z).all()

    @given(arrays(float, (10, 3), elements=st.floats(-100, 100)))
    def test_inverse_roundtrip(self, x):
        scaler = StandardScaler().fit(x)
        assert np.allclose(scaler.inverse_transform(scaler.transform(x)), x, atol=1e-8)

    def test_transform_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))

    def test_fit_rejects_1d(self):
        with pytest.raises(ValueError):
            StandardScaler().fit(np.ones(5))

    def test_state_roundtrip(self, rng):
        x = rng.normal(size=(50, 3))
        scaler = StandardScaler().fit(x)
        clone = StandardScaler.from_state(scaler.state())
        assert np.allclose(clone.transform(x), scaler.transform(x))


class TestOneHot:
    def test_encoding(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        assert np.array_equal(out, [[1, 0, 0], [0, 0, 1], [0, 1, 0]])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)
        with pytest.raises(ValueError):
            one_hot(np.array([-1]), 3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2), dtype=int), 3)


class TestTrainTestSplit:
    def test_paper_proportion(self, rng):
        x = rng.normal(size=(100, 2))
        y = rng.integers(0, 2, size=100)
        x_tr, x_te, y_tr, y_te = train_test_split(x, y, train_fraction=0.7, seed=0)
        assert len(x_tr) == 70
        assert len(x_te) == 30
        assert len(y_tr) == 70 and len(y_te) == 30

    def test_partition_is_exact(self, rng):
        x = np.arange(50).reshape(50, 1).astype(float)
        y = np.arange(50)
        x_tr, x_te, _, _ = train_test_split(x, y, seed=1)
        combined = sorted(np.concatenate([x_tr, x_te]).ravel().tolist())
        assert combined == list(range(50))

    def test_rows_stay_aligned(self, rng):
        x = np.arange(40).reshape(40, 1).astype(float)
        y = np.arange(40)
        x_tr, x_te, y_tr, y_te = train_test_split(x, y, seed=2)
        assert np.array_equal(x_tr.ravel().astype(int), y_tr)
        assert np.array_equal(x_te.ravel().astype(int), y_te)

    def test_seeded_determinism(self, rng):
        x = rng.normal(size=(30, 2))
        y = rng.integers(0, 2, size=30)
        a = train_test_split(x, y, seed=9)
        b = train_test_split(x, y, seed=9)
        assert all(np.array_equal(p, q) for p, q in zip(a, b))

    def test_validation(self):
        with pytest.raises(ValueError):
            train_test_split(np.ones((3, 1)), np.ones(4))
        with pytest.raises(ValueError):
            train_test_split(np.ones((3, 1)), np.ones(3), train_fraction=1.0)


class TestMinibatches:
    def test_covers_every_row_once(self, rng):
        x = np.arange(23).reshape(23, 1).astype(float)
        y = np.arange(23)
        seen = []
        for xb, yb in minibatches(x, y, 5, rng=rng):
            assert len(xb) == len(yb) <= 5
            seen.extend(yb.tolist())
        assert sorted(seen) == list(range(23))

    def test_without_rng_is_sequential(self):
        x = np.arange(6).reshape(6, 1).astype(float)
        y = np.arange(6)
        first_batch = next(iter(minibatches(x, y, 3)))
        assert np.array_equal(first_batch[1], [0, 1, 2])

    def test_validation(self):
        with pytest.raises(ValueError):
            list(minibatches(np.ones((2, 1)), np.ones(2), 0))
        with pytest.raises(ValueError):
            list(minibatches(np.ones((2, 1)), np.ones(3), 1))
