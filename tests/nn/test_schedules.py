"""Learning-rate schedules."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    SGD,
    ScheduledOptimizer,
    Trainer,
    constant,
    cosine,
    get_schedule,
    step_decay,
    warmup,
)


class TestSchedules:
    def test_constant(self):
        s = constant()
        assert s(0) == s(100) == 1.0

    def test_step_decay(self):
        s = step_decay(drop=0.5, every=10)
        assert s(0) == 1.0
        assert s(9) == 1.0
        assert s(10) == 0.5
        assert s(25) == 0.25

    def test_step_decay_validation(self):
        with pytest.raises(ValueError):
            step_decay(drop=0.0)
        with pytest.raises(ValueError):
            step_decay(every=0)

    def test_cosine_endpoints(self):
        s = cosine(total_iterations=100, floor=0.1)
        assert s(0) == pytest.approx(1.0)
        assert s(100) == pytest.approx(0.1)
        assert s(50) == pytest.approx(0.55)
        assert s(200) == pytest.approx(0.1)  # clamped past the horizon

    def test_cosine_validation(self):
        with pytest.raises(ValueError):
            cosine(total_iterations=0)
        with pytest.raises(ValueError):
            cosine(total_iterations=10, floor=2.0)

    def test_warmup_ramps(self):
        s = warmup(constant(), iterations=4)
        assert s(0) == pytest.approx(0.25)
        assert s(3) == pytest.approx(1.0)
        assert s(50) == 1.0

    def test_registry(self):
        assert get_schedule("constant")(5) == 1.0
        assert get_schedule("step", drop=0.1, every=1)(1) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            get_schedule("linear")


class TestScheduledOptimizer:
    def test_rate_follows_schedule(self):
        opt = ScheduledOptimizer(SGD(learning_rate=1.0), step_decay(drop=0.5, every=1))
        assert opt.current_rate == 1.0
        opt.advance()
        assert opt.current_rate == 0.5
        opt.advance()
        assert opt.current_rate == 0.25

    def test_step_delegates(self):
        opt = ScheduledOptimizer(SGD(learning_rate=0.1), constant())
        w = np.array([1.0])
        opt.step([w], [np.array([1.0])])
        assert w[0] == pytest.approx(0.9)

    def test_trainer_advances_schedule(self, rng):
        x = rng.normal(size=(40, 3))
        y = (x[:, 0] > 0).astype(int)
        net = MLP([3, 8, 2], seed=0)
        opt = ScheduledOptimizer(SGD(learning_rate=0.5), step_decay(drop=0.5, every=1))
        Trainer(net, opt, seed=0).fit(x, y, iterations=3)
        assert opt.iteration == 3
        assert opt.current_rate == pytest.approx(0.5 * 0.5**3)

    def test_scheduled_sgd_beats_fixed_on_noisy_problem_on_average(self):
        """Decaying rates settle closer to the optimum than a fixed rate
        (averaged over seeds: single runs are noise-dominated)."""
        def run(opt, seed, steps=200):
            w = np.array([5.0])
            rng_local = np.random.default_rng(seed)
            for _ in range(steps):
                grad = 2 * w + rng_local.normal(0, 4.0, size=1)
                opt.step([w], [grad])
                advance = getattr(opt, "advance", None)
                if advance:
                    advance()
            return abs(float(w[0]))

        fixed = np.mean([run(SGD(learning_rate=0.2), s) for s in range(20)])
        decayed = np.mean(
            [
                run(
                    ScheduledOptimizer(
                        SGD(learning_rate=0.2),
                        cosine(total_iterations=200, floor=0.01),
                    ),
                    s,
                )
                for s in range(20)
            ]
        )
        assert decayed < fixed
