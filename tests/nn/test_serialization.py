"""Model serialisation: bit-exact round trips."""

import json

import numpy as np
import pytest

from repro.nn import MLP
from repro.nn.serialization import CheckpointError, from_dict, load, save, to_dict


class TestRoundTrip:
    def test_bit_exact_parameters(self, rng):
        net = MLP([4, 7, 3], hidden_activation="logistic", seed=2)
        clone = from_dict(to_dict(net))
        for a, b in zip(net.layers, clone.layers):
            assert np.array_equal(a.weight, b.weight)
            assert np.array_equal(a.bias, b.bias)

    def test_identical_predictions(self, rng):
        net = MLP([4, 7, 3], seed=2)
        clone = from_dict(to_dict(net))
        x = rng.normal(size=(10, 4))
        assert np.array_equal(net.forward(x), clone.forward(x))

    def test_file_roundtrip(self, tmp_path, rng):
        net = MLP([9, 64, 42], hidden_activation="logistic", seed=1)
        path = tmp_path / "model.json"
        save(net, path)
        clone = load(path)
        x = rng.normal(size=(3, 9))
        assert np.array_equal(net.forward(x), clone.forward(x))

    def test_activation_preserved(self):
        net = MLP([2, 3, 2], hidden_activation="tanh", seed=0)
        assert from_dict(to_dict(net)).hidden_activation == "tanh"

    def test_payload_is_json_serialisable(self):
        net = MLP([2, 3, 2], seed=0)
        json.dumps(to_dict(net))  # must not raise


class TestValidation:
    def test_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            from_dict({"format": "bogus"})

    def test_rejects_layer_count_mismatch(self):
        net = MLP([2, 3, 2], seed=0)
        payload = to_dict(net)
        payload["layers"] = payload["layers"][:1]
        with pytest.raises(ValueError):
            from_dict(payload)

    def test_rejects_shape_mismatch(self):
        net = MLP([2, 3, 2], seed=0)
        payload = to_dict(net)
        payload["layers"][0]["bias"] = payload["layers"][0]["bias"][:-1]
        with pytest.raises(ValueError):
            from_dict(payload)

    def test_errors_are_checkpoint_errors(self):
        """Every rejection is a CheckpointError (a ValueError subclass)."""
        net = MLP([2, 3, 2], seed=0)
        bad_format = {"format": "bogus"}
        missing_keys = {"format": "repro-mlp-v1"}
        truncated = to_dict(net)
        truncated["layers"] = truncated["layers"][:1]
        for payload in (bad_format, missing_keys, truncated, [1, 2], {}):
            with pytest.raises(CheckpointError):
                from_dict(payload)

    def test_rejects_bad_layer_sizes(self):
        payload = to_dict(MLP([2, 3, 2], seed=0))
        for sizes in ([2], [2, 0, 2], "2,3,2", [2, 3.5, 2]):
            payload["layer_sizes"] = sizes
            with pytest.raises(CheckpointError, match="layer_sizes"):
                from_dict(payload)

    def test_rejects_unparseable_hex_floats(self):
        payload = to_dict(MLP([2, 3, 2], seed=0))
        payload["layers"][0]["weight"][0][0] = "not-a-float"
        with pytest.raises(CheckpointError, match="layer 0 weight"):
            from_dict(payload)

    def test_rejects_non_finite_parameters(self):
        payload = to_dict(MLP([2, 3, 2], seed=0))
        payload["layers"][1]["bias"][0] = float("nan").hex()
        with pytest.raises(CheckpointError, match="non-finite"):
            from_dict(payload)

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(CheckpointError, match="not valid JSON"):
            load(path)

    def test_load_rejects_truncated_file(self, tmp_path):
        net = MLP([2, 3, 2], seed=0)
        path = tmp_path / "model.json"
        save(net, path)
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: len(text) // 2], encoding="utf-8")
        with pytest.raises(CheckpointError):
            load(path)
