"""Model serialisation: bit-exact round trips."""

import json

import numpy as np
import pytest

from repro.nn import MLP
from repro.nn.serialization import from_dict, load, save, to_dict


class TestRoundTrip:
    def test_bit_exact_parameters(self, rng):
        net = MLP([4, 7, 3], hidden_activation="logistic", seed=2)
        clone = from_dict(to_dict(net))
        for a, b in zip(net.layers, clone.layers):
            assert np.array_equal(a.weight, b.weight)
            assert np.array_equal(a.bias, b.bias)

    def test_identical_predictions(self, rng):
        net = MLP([4, 7, 3], seed=2)
        clone = from_dict(to_dict(net))
        x = rng.normal(size=(10, 4))
        assert np.array_equal(net.forward(x), clone.forward(x))

    def test_file_roundtrip(self, tmp_path, rng):
        net = MLP([9, 64, 42], hidden_activation="logistic", seed=1)
        path = tmp_path / "model.json"
        save(net, path)
        clone = load(path)
        x = rng.normal(size=(3, 9))
        assert np.array_equal(net.forward(x), clone.forward(x))

    def test_activation_preserved(self):
        net = MLP([2, 3, 2], hidden_activation="tanh", seed=0)
        assert from_dict(to_dict(net)).hidden_activation == "tanh"

    def test_payload_is_json_serialisable(self):
        net = MLP([2, 3, 2], seed=0)
        json.dumps(to_dict(net))  # must not raise


class TestValidation:
    def test_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            from_dict({"format": "bogus"})

    def test_rejects_layer_count_mismatch(self):
        net = MLP([2, 3, 2], seed=0)
        payload = to_dict(net)
        payload["layers"] = payload["layers"][:1]
        with pytest.raises(ValueError):
            from_dict(payload)

    def test_rejects_shape_mismatch(self):
        net = MLP([2, 3, 2], seed=0)
        payload = to_dict(net)
        payload["layers"][0]["bias"] = payload["layers"][0]["bias"][:-1]
        with pytest.raises(ValueError):
            from_dict(payload)
