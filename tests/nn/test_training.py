"""Training loop and history recording."""

import numpy as np
import pytest

from repro.nn import MLP, History, Trainer, train


@pytest.fixture
def toy_problem(rng):
    x = rng.normal(size=(120, 3))
    y = ((x[:, 0] + x[:, 1]) > 0).astype(int)
    return x, y


class TestTrainer:
    def test_loss_decreases(self, toy_problem):
        x, y = toy_problem
        net = MLP([3, 12, 2], seed=0)
        history = Trainer(net, "adam", learning_rate=0.05, seed=0).fit(
            x, y, iterations=30
        )
        assert history.iterations == 30
        assert history.loss[-1] < history.loss[0]

    def test_records_test_metrics_when_given(self, toy_problem, rng):
        x, y = toy_problem
        net = MLP([3, 12, 2], seed=0)
        history = Trainer(net, "adam", seed=0).fit(
            x[:80], y[:80], iterations=10, x_test=x[80:], y_test=y[80:]
        )
        assert len(history.test_accuracy) == 10
        assert len(history.test_loss) == 10
        assert 0.0 <= history.final_accuracy <= 1.0

    def test_no_test_metrics_without_test_set(self, toy_problem):
        x, y = toy_problem
        net = MLP([3, 8, 2], seed=0)
        history = Trainer(net, "sgd", seed=0).fit(x, y, iterations=5)
        assert history.test_accuracy == []
        with pytest.raises(RuntimeError):
            _ = history.final_accuracy

    def test_early_stop(self, toy_problem):
        x, y = toy_problem
        net = MLP([3, 24, 2], seed=0)
        history = Trainer(net, "adam", learning_rate=0.05, seed=0).fit(
            x, y, iterations=500, early_stop_loss=0.3
        )
        assert history.iterations < 500

    def test_training_time_recorded(self, toy_problem):
        x, y = toy_problem
        net = MLP([3, 8, 2], seed=0)
        history = Trainer(net, "sgd", seed=0).fit(x, y, iterations=3)
        assert history.training_time_ms > 0

    def test_rejects_bad_batch_size(self, toy_problem):
        net = MLP([3, 8, 2], seed=0)
        with pytest.raises(ValueError):
            Trainer(net, "sgd", batch_size=0)

    def test_optimizer_kwargs_forwarded(self, toy_problem):
        x, y = toy_problem
        net = MLP([3, 8, 2], seed=0)
        trainer = Trainer(net, "sgd-momentum", momentum=0.5, learning_rate=0.01)
        assert trainer.optimizer.momentum == 0.5

    def test_weight_decay_shrinks_parameters(self, toy_problem):
        import numpy as np

        x, y = toy_problem
        plain = MLP([3, 8, 2], seed=4)
        decayed = MLP([3, 8, 2], seed=4)
        Trainer(plain, "sgd", learning_rate=1e-9, seed=0).fit(x, y, iterations=5)
        Trainer(decayed, "sgd", learning_rate=1e-9, seed=0,
                weight_decay=0.05).fit(x, y, iterations=5)
        norm = lambda net: sum(float(np.abs(p).sum()) for p in net.parameters())
        assert norm(decayed) < norm(plain)

    def test_weight_decay_validation(self):
        net = MLP([3, 8, 2], seed=0)
        import pytest as _pytest

        with _pytest.raises(ValueError):
            Trainer(net, "sgd", weight_decay=1.0)
        with _pytest.raises(ValueError):
            Trainer(net, "sgd", weight_decay=-0.1)


class TestFunctionalWrapper:
    def test_train_equivalent_to_trainer(self, toy_problem):
        x, y = toy_problem
        net = MLP([3, 8, 2], seed=1)
        history = train(net, x, y, optimizer="adam", iterations=5, seed=0)
        assert isinstance(history, History)
        assert history.iterations == 5

    def test_empty_history_raises_on_final_loss(self):
        with pytest.raises(RuntimeError):
            _ = History().final_loss


class TestConvergenceQuality:
    def test_reaches_high_accuracy_on_separable_data(self, toy_problem):
        x, y = toy_problem
        net = MLP([3, 16, 2], hidden_activation="logistic", seed=0)
        Trainer(net, "adam", learning_rate=0.05, seed=0).fit(x, y, iterations=60)
        _, acc = net.evaluate(x, y)
        assert acc > 0.9

    def test_seeded_training_is_deterministic(self, toy_problem):
        x, y = toy_problem

        def run():
            net = MLP([3, 8, 2], seed=5)
            return Trainer(net, "adam", seed=5).fit(x, y, iterations=5).loss

        assert run() == run()
