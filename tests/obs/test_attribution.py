"""Per-request latency attribution: spans, collector, validation."""

import pytest

from repro.analysis import Sanitizer, SanitizerError
from repro.obs import (
    PHASE_NAMES,
    AttributionCollector,
    AttributionError,
    RequestAttribution,
    SubrequestSpan,
    TraceRecorder,
)


class FakeDie:
    def __init__(self):
        self.gc_busy_time_us = 0.0


class FakeRequest:
    def __init__(self, workload_id=0, is_read=True, arrival_us=0.0,
                 complete_us=100.0, lpn=7):
        self.workload_id = workload_id
        self.is_read = is_read
        self.arrival_us = arrival_us
        self.complete_us = complete_us
        self.lpn = lpn

    @property
    def latency_us(self):
        return self.complete_us - self.arrival_us


def read_span(
    channel=0,
    *,
    die_enq=0.0,
    die_grant=30.0,
    gc_us=0.0,
    die_us=45.0,
    ecc_us=0.0,
    bus_enq=None,
    bus_grant=None,
    bus_us=15.0,
):
    """Build a read-shaped span: die first, then bus, contiguous timeline."""
    die = FakeDie()
    span = SubrequestSpan(channel)
    span.die_enqueued(die_enq, die)
    die.gc_busy_time_us += gc_us
    span.die_granted(die_grant, die)
    span.die_us = die_us
    span.ecc_retry_us = ecc_us
    die_done = die_grant + die_us + ecc_us
    span.bus_enqueued(die_done if bus_enq is None else bus_enq)
    span.bus_granted(die_done if bus_grant is None else bus_grant)
    span.bus_us = bus_us
    span.end_us = span.bus_grant_us + bus_us
    return span


class TestSubrequestSpan:
    def test_die_wait_splits_host_and_gc(self):
        span = read_span(die_grant=30.0, gc_us=12.0)
        assert span.gc_stall_us == 12.0
        assert span.die_wait_us == 18.0

    def test_gc_stall_clamped_to_wait(self):
        # more GC busy-time booked than we actually waited: the excess
        # belongs to grants that overlapped other spans, not ours
        span = read_span(die_grant=10.0, gc_us=50.0)
        assert span.gc_stall_us == 10.0
        assert span.die_wait_us == 0.0

    def test_bus_wait(self):
        span = read_span(die_grant=0.0, bus_enq=45.0, bus_grant=52.0)
        assert span.bus_wait_us == 7.0


class TestRequestAttribution:
    def test_phases_cover_canonical_vocabulary(self):
        rec = RequestAttribution(0, "read", 1, 60.0, die_us=45.0, bus_us=15.0)
        assert set(rec.phases()) == set(PHASE_NAMES)
        assert rec.phase_sum_us() == 60.0

    def test_to_dict(self):
        rec = RequestAttribution(2, "write", 3, 10.0, die_us=10.0)
        d = rec.to_dict()
        assert d["workload_id"] == 2
        assert d["op"] == "write"
        assert d["channel"] == 3
        assert d["die_us"] == 10.0


class TestAttributionCollector:
    def test_validates_tolerance(self):
        with pytest.raises(ValueError):
            AttributionCollector(tolerance_us=0.0)

    def test_record_exact_sum(self):
        coll = AttributionCollector()
        span = read_span(die_grant=30.0, gc_us=12.0)
        req = FakeRequest(workload_id=1, arrival_us=0.0, complete_us=span.end_us)
        rec = coll.record(req, span)
        assert rec.phase_sum_us() == pytest.approx(req.latency_us, abs=1e-9)
        assert coll.requests == 1
        assert coll.records == [rec]

    def test_mismatch_raises_attribution_error(self):
        coll = AttributionCollector()
        span = read_span()
        # claim a latency the phases cannot reproduce
        req = FakeRequest(arrival_us=0.0, complete_us=span.end_us + 5.0)
        with pytest.raises(AttributionError) as err:
            coll.record(req, span)
        assert "phases sum to" in str(err.value)

    def test_mismatch_routes_through_attached_sanitizer(self):
        coll = AttributionCollector()
        coll.sanitizer = Sanitizer()
        span = read_span()
        good = FakeRequest(arrival_us=0.0, complete_us=span.end_us)
        coll.record(good, read_span())
        assert coll.sanitizer.stats()["attribution_checks"] == 1
        bad = FakeRequest(arrival_us=0.0, complete_us=span.end_us + 5.0)
        with pytest.raises(SanitizerError) as err:
            coll.record(bad, read_span())
        assert err.value.invariant == "attribution-exact-sum"

    def test_aggregates_per_tenant_and_channel(self):
        coll = AttributionCollector()
        for wid, ch in ((0, 0), (0, 1), (1, 1)):
            span = read_span(channel=ch)
            req = FakeRequest(workload_id=wid, is_read=(wid == 0),
                              complete_us=span.end_us)
            coll.record(req, span)
        b = coll.breakdown()
        assert b.requests == 3
        assert b.per_tenant[0]["requests"] == 2
        assert b.per_tenant[1]["requests"] == 1
        assert b.per_channel[1]["requests"] == 2
        assert b.total_latency_us == pytest.approx(
            sum(r.latency_us for r in coll.records)
        )
        # totals equal the sum over tenants, phase by phase
        for name in PHASE_NAMES:
            assert b.phase_totals_us[name] == pytest.approx(
                b.per_tenant[0][name] + b.per_tenant[1][name]
            )

    def test_phase_fractions_sum_to_one(self):
        coll = AttributionCollector()
        span = read_span(die_grant=30.0, gc_us=12.0)
        coll.record(FakeRequest(complete_us=span.end_us), span)
        fractions = coll.breakdown().phase_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_empty_breakdown_fractions_are_zero(self):
        b = AttributionCollector().breakdown()
        assert all(v == 0.0 for v in b.phase_fractions().values())

    def test_keep_records_false_keeps_aggregates_only(self):
        coll = AttributionCollector(keep_records=False)
        span = read_span()
        coll.record(FakeRequest(complete_us=span.end_us), span)
        assert coll.records is None
        assert coll.requests == 1

    def test_gc_notes(self):
        coll = AttributionCollector()
        coll.note_gc_trigger(1, 3)
        coll.note_gc_trigger(1, 2)
        coll.note_gc_reclaim(0, moves=5, retired=False)
        coll.note_gc_reclaim(0, moves=0, retired=True)
        b = coll.breakdown()
        assert b.gc_triggers[1] == {"writes": 2, "work_items": 5}
        assert b.gc_reclaims[0] == {"blocks": 2, "moves": 5, "retired": 1}

    def test_breakdown_to_dict_and_format(self):
        coll = AttributionCollector()
        span = read_span(die_grant=30.0, gc_us=12.0)
        coll.record(FakeRequest(complete_us=span.end_us), span)
        coll.note_gc_trigger(0, 4)
        doc = coll.breakdown().to_dict()
        assert doc["requests"] == 1
        assert set(doc["phase_totals_us"]) == set(PHASE_NAMES)
        assert doc["gc"]["triggered_by_tenant"][0] == {
            "writes": 1, "work_items": 4,
        }
        text = coll.breakdown().format()
        assert "latency attribution over 1 requests" in text
        assert "gc_stall_us" in text
        assert "gc triggered by" in text

    def test_buffer_hit_record(self):
        coll = AttributionCollector()
        span = coll.span(-1)
        span.buffer_us = 2.5
        span.end_us = 2.5
        req = FakeRequest(arrival_us=0.0, complete_us=2.5)
        rec = coll.record(req, span)
        assert rec.channel == -1
        assert rec.buffer_us == 2.5
        assert rec.phase_sum_us() == pytest.approx(2.5)


class TestTraceSpanEmission:
    def test_emits_per_phase_spans(self):
        trace = TraceRecorder()
        coll = AttributionCollector(trace=trace)
        span = read_span(die_grant=30.0, gc_us=12.0, ecc_us=9.0)
        req = FakeRequest(workload_id=2, complete_us=span.end_us)
        coll.record(req, span)
        names = [e.name for e in trace.events()]
        assert names == ["req_span", "req_wait_die", "req_die", "req_bus"]
        req_span = trace.events("req_span")[0]
        assert req_span.track == "w2"
        assert req_span.cat == "attr"
        assert req_span.dur_us == pytest.approx(req.latency_us)
        wait = trace.events("req_wait_die")[0]
        assert wait.args == {"gc_stall_us": 12.0}
        die = trace.events("req_die")[0]
        assert die.args == {"ecc_retry_us": 9.0}
        # phase spans tile the request span end to end
        assert die.ts_us == wait.ts_us + wait.dur_us
        bus = trace.events("req_bus")[0]
        assert bus.ts_us + bus.dur_us == pytest.approx(span.end_us)

    def test_buffer_hit_emits_dram_span_only(self):
        trace = TraceRecorder()
        coll = AttributionCollector(trace=trace)
        span = coll.span(-1)
        span.buffer_us = 2.5
        span.end_us = 2.5
        coll.record(FakeRequest(complete_us=2.5), span)
        assert [e.name for e in trace.events()] == ["req_span", "req_dram"]

    def test_disabled_trace_is_dropped(self):
        coll = AttributionCollector(trace=None)
        assert coll.trace is None


class TestBreakdownEdgeCases:
    """Degenerate runs must produce well-formed summaries (satellite of
    the critical-path explainer: it feeds on these aggregates)."""

    def test_empty_run_fractions_and_format(self):
        bd = AttributionCollector().breakdown()
        assert bd.requests == 0
        fractions = bd.phase_fractions()
        assert set(fractions) == set(PHASE_NAMES)
        assert all(value == 0.0 for value in fractions.values())
        text = bd.format()
        assert "0 requests" in text
        assert "0.000s total" in text

    def test_zero_latency_run_fractions_and_format(self):
        # a record whose every phase is zero: requests > 0 but the total
        # attributed latency is 0 — fractions must not divide by zero
        coll = AttributionCollector()
        span = coll.span(0)
        coll.record(FakeRequest(arrival_us=5.0, complete_us=5.0), span)
        bd = coll.breakdown()
        assert bd.requests == 1
        assert bd.total_latency_us == 0.0
        fractions = bd.phase_fractions()
        assert all(value == 0.0 for value in fractions.values())
        text = bd.format()
        assert "1 requests" in text  # renders, no ZeroDivisionError

    def test_empty_run_to_dict_shape(self):
        doc = AttributionCollector().breakdown().to_dict()
        assert doc["requests"] == 0
        assert doc["per_tenant"] == {}
        assert doc["per_channel"] == {}
        assert doc["phase_fractions"] == {n: 0.0 for n in PHASE_NAMES}
