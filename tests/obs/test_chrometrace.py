"""Chrome trace format exporter."""

import json

from repro.obs import TraceEvent, to_chrome_trace, write_chrome_trace


def sample_events():
    return [
        TraceEvent(0.0, "request_submit", "w0", "host", args={"op": "read"}),
        TraceEvent(1.0, "channel_acquire", "ch0", "resource", dur_us=2.5),
        TraceEvent(3.5, "channel_release", "ch0", "resource"),
        TraceEvent(1.5, "die_acquire", "die2", "resource", dur_us=40.0),
    ]


class TestToChromeTrace:
    def test_document_shape(self):
        doc = to_chrome_trace(sample_events())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        # 3 tracks -> 3 metadata records + 4 events
        assert len(doc["traceEvents"]) == 7

    def test_thread_names_and_stable_tids(self):
        doc = to_chrome_trace(sample_events())
        meta = [r for r in doc["traceEvents"] if r["ph"] == "M"]
        names = {r["args"]["name"]: r["tid"] for r in meta}
        assert set(names) == {"w0", "ch0", "die2"}
        # ordering: workers before channels before dies
        assert names["w0"] < names["ch0"] < names["die2"]

    def test_duration_events_are_complete_spans(self):
        doc = to_chrome_trace(sample_events())
        spans = [r for r in doc["traceEvents"] if r["ph"] == "X"]
        assert {r["name"] for r in spans} == {"channel_acquire", "die_acquire"}
        assert all("dur" in r for r in spans)

    def test_instant_events(self):
        doc = to_chrome_trace(sample_events())
        instants = [r for r in doc["traceEvents"] if r["ph"] == "i"]
        assert {r["name"] for r in instants} == {
            "request_submit",
            "channel_release",
        }
        assert all(r["s"] == "t" for r in instants)

    def test_events_share_one_pid_and_resolve_tids(self):
        doc = to_chrome_trace(sample_events())
        records = doc["traceEvents"]
        assert len({r["pid"] for r in records}) == 1
        meta_tids = {r["tid"] for r in records if r["ph"] == "M"}
        event_tids = {r["tid"] for r in records if r["ph"] != "M"}
        assert event_tids <= meta_tids

    def test_empty_track_maps_to_sim(self):
        doc = to_chrome_trace([TraceEvent(0.0, "keeper_switch")])
        meta = [r for r in doc["traceEvents"] if r["ph"] == "M"]
        assert meta[0]["args"]["name"] == "sim"

    def test_write_round_trips(self, tmp_path):
        path = tmp_path / "trace.json"
        written = write_chrome_trace(sample_events(), path)
        doc = json.loads(path.read_text())
        assert written == len(doc["traceEvents"])
