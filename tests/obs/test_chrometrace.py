"""Chrome trace format exporter."""

import json

from repro.obs import TraceEvent, to_chrome_trace, write_chrome_trace


def sample_events():
    return [
        TraceEvent(0.0, "request_submit", "w0", "host", args={"op": "read"}),
        TraceEvent(1.0, "channel_acquire", "ch0", "resource", dur_us=2.5),
        TraceEvent(3.5, "channel_release", "ch0", "resource"),
        TraceEvent(1.5, "die_acquire", "die2", "resource", dur_us=40.0),
    ]


class TestToChromeTrace:
    def test_document_shape(self):
        doc = to_chrome_trace(sample_events())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        # 3 processes (host/channels/dies) x 2 process metadata records
        # + 3 thread_name records + 4 events
        assert len(doc["traceEvents"]) == 13

    def test_process_names_cover_every_pid(self):
        doc = to_chrome_trace(sample_events())
        records = doc["traceEvents"]
        named = {
            r["pid"]: r["args"]["name"]
            for r in records
            if r["ph"] == "M" and r["name"] == "process_name"
        }
        assert set(named.values()) == {"host", "channels", "dies"}
        assert {r["pid"] for r in records} <= set(named)

    def test_thread_names_are_readable(self):
        doc = to_chrome_trace(sample_events())
        meta = [
            r for r in doc["traceEvents"]
            if r["ph"] == "M" and r["name"] == "thread_name"
        ]
        names = {r["args"]["name"] for r in meta}
        assert names == {"tenant 0", "channel 0", "die 2"}

    def test_tracks_group_into_processes(self):
        doc = to_chrome_trace(sample_events())
        events = [r for r in doc["traceEvents"] if r["ph"] != "M"]
        pid_of = {r["name"]: r["pid"] for r in events}
        assert pid_of["channel_acquire"] == pid_of["channel_release"]
        assert pid_of["request_submit"] != pid_of["channel_acquire"]
        assert pid_of["channel_acquire"] != pid_of["die_acquire"]

    def test_duration_events_are_complete_spans(self):
        doc = to_chrome_trace(sample_events())
        spans = [r for r in doc["traceEvents"] if r["ph"] == "X"]
        assert {r["name"] for r in spans} == {"channel_acquire", "die_acquire"}
        assert all("dur" in r for r in spans)

    def test_instant_events(self):
        doc = to_chrome_trace(sample_events())
        instants = [r for r in doc["traceEvents"] if r["ph"] == "i"]
        assert {r["name"] for r in instants} == {
            "request_submit",
            "channel_release",
        }
        assert all(r["s"] == "t" for r in instants)

    def test_events_resolve_declared_threads(self):
        doc = to_chrome_trace(sample_events())
        records = doc["traceEvents"]
        declared = {
            (r["pid"], r["tid"])
            for r in records
            if r["ph"] == "M" and r["name"] == "thread_name"
        }
        used = {(r["pid"], r["tid"]) for r in records if r["ph"] != "M"}
        assert used <= declared

    def test_empty_track_maps_to_sim_process(self):
        doc = to_chrome_trace([TraceEvent(0.0, "keeper_switch")])
        records = doc["traceEvents"]
        process = [
            r["args"]["name"]
            for r in records
            if r["ph"] == "M" and r["name"] == "process_name"
        ]
        assert process == ["sim"]
        threads = [
            r["args"]["name"]
            for r in records
            if r["ph"] == "M" and r["name"] == "thread_name"
        ]
        assert threads == ["sim"]

    def test_write_round_trips(self, tmp_path):
        path = tmp_path / "trace.json"
        written = write_chrome_trace(sample_events(), path)
        doc = json.loads(path.read_text())
        assert written == len(doc["traceEvents"])


class TestDeviceNamespacing:
    def test_default_output_is_unchanged(self):
        """``device=None`` must keep the classic solo pids/names."""
        doc = to_chrome_trace(sample_events())
        pids = {r["pid"] for r in doc["traceEvents"]}
        assert pids == {1, 2, 3}

    def test_device_offsets_every_pid(self):
        solo = to_chrome_trace(sample_events())
        dev1 = to_chrome_trace(sample_events(), device=1)
        solo_pids = sorted({r["pid"] for r in solo["traceEvents"]})
        dev1_pids = sorted({r["pid"] for r in dev1["traceEvents"]})
        assert dev1_pids == [p + 20 for p in solo_pids]

    def test_device_prefixes_process_names(self):
        doc = to_chrome_trace(sample_events(), device=0)
        names = {
            r["args"]["name"]
            for r in doc["traceEvents"]
            if r["ph"] == "M" and r["name"] == "process_name"
        }
        assert names == {
            "device 0 / host", "device 0 / channels", "device 0 / dies"
        }

    def test_two_devices_never_collide_on_pid(self):
        a = to_chrome_trace(sample_events(), device=0)
        b = to_chrome_trace(sample_events(), device=1)
        pids_a = {r["pid"] for r in a["traceEvents"]}
        pids_b = {r["pid"] for r in b["traceEvents"]}
        assert not pids_a & pids_b

    def test_rejects_negative_device(self):
        import pytest

        with pytest.raises(ValueError):
            to_chrome_trace(sample_events(), device=-1)

    def test_structure_identical_modulo_namespace(self):
        """Namespacing shifts pids and prefixes names — nothing else."""
        solo = to_chrome_trace(sample_events())["traceEvents"]
        dev0 = to_chrome_trace(sample_events(), device=0)["traceEvents"]
        assert len(solo) == len(dev0)
        for s, d in zip(solo, dev0):
            assert d["pid"] == s["pid"] + 10
            assert d.get("tid") == s.get("tid")
            assert d["name"] == s["name"]
            if s["ph"] == "M" and s["name"] == "process_name":
                assert d["args"]["name"] == f"device 0 / {s['args']['name']}"


class TestFleetChromeTrace:
    def fleet_events(self):
        return [
            TraceEvent(
                100.0, "tenant_migration", "tenant0", "fleet",
                dur_us=40.0, args={"src": 0, "dst": 1},
            ),
            TraceEvent(200.0, "fleet_slo_alert", "tenant0.read_p95_us", "fleet"),
        ]

    def test_merges_devices_into_disjoint_pid_groups(self):
        from repro.obs.chrometrace import to_fleet_chrome_trace

        doc = to_fleet_chrome_trace({
            0: sample_events(), 1: sample_events(),
        })
        by_device = {}
        for r in doc["traceEvents"]:
            if r["ph"] == "M" and r["name"] == "process_name":
                prefix = r["args"]["name"].split(" / ")[0]
                by_device.setdefault(prefix, set()).add(r["pid"])
        assert set(by_device) == {"device 0", "device 1"}
        assert not by_device["device 0"] & by_device["device 1"]

    def test_fleet_events_get_their_own_process(self):
        from repro.obs.chrometrace import to_fleet_chrome_trace

        doc = to_fleet_chrome_trace(
            {0: sample_events()}, fleet_events=self.fleet_events()
        )
        process_names = {
            r["pid"]: r["args"]["name"]
            for r in doc["traceEvents"]
            if r["ph"] == "M" and r["name"] == "process_name"
        }
        fleet_pids = [p for p, n in process_names.items() if n == "fleet"]
        assert len(fleet_pids) == 1
        migration = next(
            r for r in doc["traceEvents"] if r["name"] == "tenant_migration"
        )
        assert migration["pid"] == fleet_pids[0]
        assert migration["ph"] == "X"
        assert migration["dur"] == 40.0

    def test_empty_fleet_stream_adds_nothing(self):
        from repro.obs.chrometrace import to_fleet_chrome_trace

        with_none = to_fleet_chrome_trace({0: sample_events()})
        with_empty = to_fleet_chrome_trace({0: sample_events()}, fleet_events=[])
        assert with_none == with_empty

    def test_write_round_trips(self, tmp_path):
        from repro.obs.chrometrace import write_fleet_chrome_trace

        path = tmp_path / "fleet.chrome.json"
        written = write_fleet_chrome_trace(
            {0: sample_events(), 1: sample_events()},
            path,
            fleet_events=self.fleet_events(),
        )
        doc = json.loads(path.read_text())
        assert written == len(doc["traceEvents"])


class TestDiffChromeTrace:
    def test_sides_occupy_adjacent_device_namespaces(self):
        from repro.obs.chrometrace import to_diff_chrome_trace

        doc = to_diff_chrome_trace(sample_events(), sample_events())
        records = doc["traceEvents"]
        process_names = {
            r["args"]["name"] for r in records
            if r["ph"] == "M" and r["name"] == "process_name"
        }
        assert any(n.startswith("device 0 / ") for n in process_names)
        assert any(n.startswith("device 1 / ") for n in process_names)
        # both sides carry the full event stream
        assert sum(1 for r in records if r["ph"] in ("X", "i")) == 8

    def test_accepts_plain_dict_events(self):
        from repro.obs.chrometrace import to_diff_chrome_trace

        dicts = [e.to_dict() for e in sample_events()]
        assert to_diff_chrome_trace(dicts, dicts) == to_diff_chrome_trace(
            sample_events(), sample_events()
        )

    def test_divergence_markers_span_the_forked_region(self):
        from repro.obs.chrometrace import to_diff_chrome_trace

        first = {"index": 2, "time_us_a": 3.5, "time_us_b": 4.0,
                 "kind": "channel_release", "tenant": None, "channel": 0,
                 "die": None}
        doc = to_diff_chrome_trace(
            sample_events(), sample_events(), first_divergence=first
        )
        records = doc["traceEvents"]
        marker = [r for r in records if r["name"] == "first_divergence"]
        assert len(marker) == 1
        assert marker[0]["ph"] == "i"
        assert marker[0]["ts"] == 3.5  # min(time_us_a, time_us_b)
        assert marker[0]["args"]["channel"] == 0
        assert marker[0]["args"]["index"] == 2
        region = next(r for r in records if r["name"] == "divergent_region")
        assert region["ph"] == "X"
        assert region["ts"] == 3.5
        assert region["dur"] == 38.0  # up to die_acquire end (1.5 + 40.0)

    def test_no_markers_without_first_divergence(self):
        from repro.obs.chrometrace import to_diff_chrome_trace

        doc = to_diff_chrome_trace(sample_events(), sample_events())
        names = {r["name"] for r in doc["traceEvents"]}
        assert "first_divergence" not in names
        assert "divergent_region" not in names

    def test_write_returns_record_count(self, tmp_path):
        from repro.obs.chrometrace import write_diff_chrome_trace

        path = tmp_path / "diff_trace.json"
        count = write_diff_chrome_trace(
            sample_events(), sample_events(), path
        )
        doc = json.loads(path.read_text())
        assert count == len(doc["traceEvents"]) > 0
