"""Chrome trace format exporter."""

import json

from repro.obs import TraceEvent, to_chrome_trace, write_chrome_trace


def sample_events():
    return [
        TraceEvent(0.0, "request_submit", "w0", "host", args={"op": "read"}),
        TraceEvent(1.0, "channel_acquire", "ch0", "resource", dur_us=2.5),
        TraceEvent(3.5, "channel_release", "ch0", "resource"),
        TraceEvent(1.5, "die_acquire", "die2", "resource", dur_us=40.0),
    ]


class TestToChromeTrace:
    def test_document_shape(self):
        doc = to_chrome_trace(sample_events())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        # 3 processes (host/channels/dies) x 2 process metadata records
        # + 3 thread_name records + 4 events
        assert len(doc["traceEvents"]) == 13

    def test_process_names_cover_every_pid(self):
        doc = to_chrome_trace(sample_events())
        records = doc["traceEvents"]
        named = {
            r["pid"]: r["args"]["name"]
            for r in records
            if r["ph"] == "M" and r["name"] == "process_name"
        }
        assert set(named.values()) == {"host", "channels", "dies"}
        assert {r["pid"] for r in records} <= set(named)

    def test_thread_names_are_readable(self):
        doc = to_chrome_trace(sample_events())
        meta = [
            r for r in doc["traceEvents"]
            if r["ph"] == "M" and r["name"] == "thread_name"
        ]
        names = {r["args"]["name"] for r in meta}
        assert names == {"tenant 0", "channel 0", "die 2"}

    def test_tracks_group_into_processes(self):
        doc = to_chrome_trace(sample_events())
        events = [r for r in doc["traceEvents"] if r["ph"] != "M"]
        pid_of = {r["name"]: r["pid"] for r in events}
        assert pid_of["channel_acquire"] == pid_of["channel_release"]
        assert pid_of["request_submit"] != pid_of["channel_acquire"]
        assert pid_of["channel_acquire"] != pid_of["die_acquire"]

    def test_duration_events_are_complete_spans(self):
        doc = to_chrome_trace(sample_events())
        spans = [r for r in doc["traceEvents"] if r["ph"] == "X"]
        assert {r["name"] for r in spans} == {"channel_acquire", "die_acquire"}
        assert all("dur" in r for r in spans)

    def test_instant_events(self):
        doc = to_chrome_trace(sample_events())
        instants = [r for r in doc["traceEvents"] if r["ph"] == "i"]
        assert {r["name"] for r in instants} == {
            "request_submit",
            "channel_release",
        }
        assert all(r["s"] == "t" for r in instants)

    def test_events_resolve_declared_threads(self):
        doc = to_chrome_trace(sample_events())
        records = doc["traceEvents"]
        declared = {
            (r["pid"], r["tid"])
            for r in records
            if r["ph"] == "M" and r["name"] == "thread_name"
        }
        used = {(r["pid"], r["tid"]) for r in records if r["ph"] != "M"}
        assert used <= declared

    def test_empty_track_maps_to_sim_process(self):
        doc = to_chrome_trace([TraceEvent(0.0, "keeper_switch")])
        records = doc["traceEvents"]
        process = [
            r["args"]["name"]
            for r in records
            if r["ph"] == "M" and r["name"] == "process_name"
        ]
        assert process == ["sim"]
        threads = [
            r["args"]["name"]
            for r in records
            if r["ph"] == "M" and r["name"] == "thread_name"
        ]
        assert threads == ["sim"]

    def test_write_round_trips(self, tmp_path):
        path = tmp_path / "trace.json"
        written = write_chrome_trace(sample_events(), path)
        doc = json.loads(path.read_text())
        assert written == len(doc["traceEvents"])
