"""Unit tests for run-level critical-path extraction."""

import math

import pytest

from repro.analysis import Sanitizer, SanitizerError
from repro.obs.attribution import RequestAttribution
from repro.obs.critpath import (
    CRITPATH_SCHEMA_VERSION,
    BottleneckReport,
    CritPathError,
    extract_critical_path,
)


def rec(
    wid, op, channel, die, arrival_us, *, queue_die_us=0.0, gc_stall_us=0.0,
    queue_channel_us=0.0, bus_us=0.0, die_us=0.0, ecc_retry_us=0.0,
    buffer_us=0.0,
):
    latency_us = (
        queue_die_us + gc_stall_us + queue_channel_us + bus_us + die_us
        + ecc_retry_us + buffer_us
    )
    return RequestAttribution(
        wid, op, channel, latency_us,
        die=die, arrival_us=arrival_us,
        queue_channel_us=queue_channel_us, queue_die_us=queue_die_us,
        gc_stall_us=gc_stall_us, bus_us=bus_us, die_us=die_us,
        ecc_retry_us=ecc_retry_us, buffer_us=buffer_us,
    )


class TestExtraction:
    def test_single_request_covers_whole_makespan(self):
        records = [rec(0, "read", 0, 0, 0.0, die_us=20.0, bus_us=40.0)]
        report = extract_critical_path(records, 60.0)
        assert report.critical_requests == 1
        assert report.resources["die0"]["service_us"] == 20.0
        assert report.resources["ch0"]["service_us"] == 40.0
        assert report.host_gap_us == 0.0
        assert report.residual_us == pytest.approx(0.0, abs=1e-9)
        assert report.total_us() == pytest.approx(60.0)

    def test_arrival_gap_charged_to_host(self):
        records = [
            rec(0, "read", 0, 0, 0.0, die_us=20.0),          # [0, 20]
            rec(1, "read", 1, 2, 50.0, die_us=25.0),         # [50, 75]
        ]
        report = extract_critical_path(records, 75.0)
        assert report.critical_requests == 2
        assert report.host_gap_us == pytest.approx(30.0)
        assert report.total_us() == pytest.approx(75.0)

    def test_leading_idle_before_first_arrival(self):
        records = [rec(0, "write", 0, 1, 100.0, die_us=200.0)]
        report = extract_critical_path(records, 300.0)
        assert report.host_gap_us == pytest.approx(100.0)
        assert report.total_us() == pytest.approx(300.0)

    def test_trailing_internal_work_charged_to_tail(self):
        # makespan extends past the last host completion (trailing GC)
        records = [rec(0, "write", 0, 0, 0.0, die_us=200.0)]
        report = extract_critical_path(records, 1700.0)
        assert report.internal_tail_us == pytest.approx(1500.0)
        assert report.total_us() == pytest.approx(1700.0)
        kinds = [step.kind for step in report.steps]
        assert kinds == ["request", "internal-tail"]

    def test_overlapping_requests_pick_latest_completion(self):
        # both complete inside the window; the chain takes the one whose
        # completion defines each boundary
        records = [
            rec(0, "read", 0, 0, 0.0, die_us=60.0),              # [0, 60]
            rec(1, "read", 1, 1, 10.0, queue_die_us=30.0, die_us=20.0),  # [10, 60]
        ]
        report = extract_critical_path(records, 60.0)
        # tie at 60: earliest arrival wins -> record 0 covers [0, 60]
        assert report.critical_requests == 1
        assert report.resources["die0"]["service_us"] == 60.0
        assert report.total_us() == pytest.approx(60.0)

    def test_gc_stall_bucket(self):
        records = [
            rec(0, "write", 2, 5, 0.0, gc_stall_us=1500.0, die_us=200.0,
                bus_us=40.0),
        ]
        report = extract_critical_path(records, 1740.0)
        assert report.resources["die5"]["gc_us"] == pytest.approx(1500.0)
        assert report.phase_totals_us["gc_stall_us"] == pytest.approx(1500.0)

    def test_buffer_hit_charged_to_dram(self):
        records = [rec(0, "write", -1, -1, 0.0, buffer_us=2.0)]
        report = extract_critical_path(records, 2.0)
        assert report.resources["dram"]["service_us"] == pytest.approx(2.0)

    def test_empty_run(self):
        report = extract_critical_path([], 0.0)
        assert report.critical_requests == 0
        assert report.resources == {}
        assert report.makespan_us == 0.0
        assert report.bottleneck() is None
        assert report.format()  # renders without crashing

    def test_ranked_and_bottleneck(self):
        records = [
            rec(0, "read", 0, 0, 0.0, queue_die_us=70.0, die_us=20.0,
                bus_us=10.0),
        ]
        report = extract_critical_path(records, 100.0)
        ranked = report.ranked()
        assert ranked[0] == ("die0", pytest.approx(90.0))
        assert report.bottleneck() == "die0"

    def test_fsum_residual_stays_tiny_over_many_segments(self):
        # thousands of float segments: naive summation would drift past
        # 1e-6; fsum keeps the residual at rounding scale
        records = []
        t = 0.0
        for i in range(5000):
            records.append(
                rec(i % 4, "read", i % 8, i % 16, t, die_us=0.1, bus_us=0.07)
            )
            t += 0.17
        report = extract_critical_path(records, t, tolerance_us=1e-6)
        assert abs(report.residual_us) < 1e-6
        assert report.total_us() == pytest.approx(t, abs=1e-9)


def inconsistent_record():
    """A record whose phases do not tile its own [arrival, complete]
    window — the corruption the exact-sum invariant exists to catch."""
    return RequestAttribution(
        0, "read", 0, 20.0, die=0, arrival_us=0.0, complete_us=20.0,
        die_us=15.0,  # 5us of the window are unaccounted for
    )


class TestValidation:
    def test_exact_sum_violation_raises(self):
        with pytest.raises(CritPathError):
            extract_critical_path([inconsistent_record()], 20.0)

    def test_sanitizer_routes_check(self):
        san = Sanitizer()
        records = [rec(0, "read", 0, 0, 0.0, die_us=20.0)]
        extract_critical_path(records, 20.0, sanitizer=san)
        assert san.critpath_checks == 1
        assert san.stats()["critpath_checks"] == 1

    def test_sanitizer_reports_violation(self):
        san = Sanitizer()
        with pytest.raises(SanitizerError) as exc_info:
            extract_critical_path(
                [inconsistent_record()], 20.0, sanitizer=san
            )
        assert exc_info.value.invariant == "critpath-exact-sum"

    def test_validate_false_never_raises(self):
        report = extract_critical_path(
            [inconsistent_record()], 20.0, validate=False
        )
        assert report.residual_us == pytest.approx(5.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            extract_critical_path([], 0.0, tolerance_us=0.0)
        with pytest.raises(ValueError):
            extract_critical_path([], -1.0)


class TestReportShape:
    def test_to_dict_schema(self):
        records = [rec(0, "read", 3, 7, 0.0, die_us=20.0, bus_us=40.0)]
        doc = extract_critical_path(records, 60.0).to_dict()
        assert doc["schema_version"] == CRITPATH_SCHEMA_VERSION
        assert doc["makespan_us"] == 60.0
        assert doc["critical_requests"] == 1
        assert "die7" in doc["resources"]
        assert "ch3" in doc["resources"]
        assert doc["ranked"][0]["resource"] in ("die7", "ch3")
        total = math.fsum(
            value for row in doc["resources"].values()
            for value in row.values()
        )
        total += doc["host_gap_us"] + doc["internal_tail_us"]
        total += doc["residual_us"]
        assert total == pytest.approx(60.0, abs=1e-9)

    def test_report_total_equals_makespan_by_construction(self):
        records = [
            rec(0, "read", 0, 0, 0.0, die_us=33.3),
            rec(1, "write", 1, 2, 40.0, die_us=111.1, gc_stall_us=7.7),
        ]
        report = extract_critical_path(records, 198.1, tolerance_us=1e-3)
        assert isinstance(report, BottleneckReport)
        assert report.total_us() == pytest.approx(198.1, abs=1e-9)
