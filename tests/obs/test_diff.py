"""Differential forensics: report schema, comparators, run diff."""

import copy
import json

import pytest

from repro.harness.bench import SCENARIOS, SCHEMA_VERSION
from repro.obs.critpath import CRITPATH_SCHEMA_VERSION
from repro.obs.diff import (
    DIFF_SCHEMA_VERSION,
    DiffError,
    build_diff_report,
    diff_bench_docs,
    diff_critpath_docs,
    diff_fleet_devices,
    diff_run,
    diff_traces,
    load_diff,
    phase_waterfall,
    write_diff,
)


# ----------------------------------------------------------------------
# Artifact factories
# ----------------------------------------------------------------------
def make_bench_doc(read_us=100.0, wall_s=0.5, rps=1000.0, *, quick=True,
                   phases=None, scenario="mix2_shared"):
    entry = {
        "kind": "simulator",
        "requests": 600,
        "metrics": {
            "wall_s": wall_s,
            "requests_per_s": rps,
            "sim_mean_read_us": read_us,
        },
    }
    if phases is not None:
        entry["attribution"] = {"phase_totals_us": dict(phases)}
    return {
        "schema_version": SCHEMA_VERSION,
        "created": "2026-01-01T00:00:00Z",
        "quick": quick,
        "repeat": 1,
        "python": "3.11.0",
        "platform": "test-host",
        "scenarios": {scenario: entry},
    }


def make_critpath(resources, *, makespan_us=100.0, host=0.0, internal=0.0,
                  residual=0.0):
    ranked = sorted(resources, key=lambda n: -sum(resources[n].values()))
    return {
        "schema_version": CRITPATH_SCHEMA_VERSION,
        "makespan_us": makespan_us,
        "critical_requests": 1,
        "host_gap_us": host,
        "internal_tail_us": internal,
        "residual_us": residual,
        "resources": {name: dict(row) for name, row in resources.items()},
        "phase_totals_us": {},
        "ranked": [
            {"resource": name, "total_us": sum(resources[name].values())}
            for name in ranked
        ],
        "steps": [],
    }


def ev(ts_us, name, track="", dur_us=None, args=None):
    return {"ts_us": ts_us, "name": name, "track": track, "cat": "sim",
            "dur_us": dur_us, "args": args or {}}


def make_fleet_doc():
    from repro.obs.fleet import build_fleet_report
    from repro.ssd.fleet import FleetResult
    from repro.ssd.metrics import OpStats, SimulationResult

    result = SimulationResult(
        read=OpStats(), write=OpStats(), per_workload={},
        makespan_us=10.0, requests=2, subrequests=2,
    )
    fr = FleetResult(
        results=[result],
        placement_initial={0: 0},
        placement_final={0: 0},
        migrations=[],
        completions=[{0: 2}],
        makespan_us=10.0,
        events=5,
    )
    doc = build_fleet_report(fr, seed=7)
    # a second, slower device: same shape, shifted metrics
    other = copy.deepcopy(doc["devices"][0])
    other["device"] = 1
    other["makespan_us"] = 14.0
    other["failed_reads"] = 1
    doc["devices"].append(other)
    return doc


# ----------------------------------------------------------------------
# Report document plumbing
# ----------------------------------------------------------------------
class TestReportSchema:
    def section(self, *, identical=True, divergences=0, regressions=0):
        return {"identical": identical, "divergences": divergences,
                "regressions": regressions}

    def test_build_and_load_round_trip(self):
        report = build_diff_report("trace", "a", "b", {"trace": self.section()})
        loaded = load_diff(report)
        assert loaded["schema_version"] == DIFF_SCHEMA_VERSION
        assert loaded["identical"] is True

    def test_rollups_aggregate_over_sections(self):
        report = build_diff_report("run", "a", "b", {
            "metrics": self.section(identical=False, divergences=2,
                                    regressions=1),
            "trace": self.section(identical=True),
        })
        assert report["identical"] is False
        assert report["divergences"] == 2
        assert report["regressions"] == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown diff kind"):
            build_diff_report("nonsense", "a", "b", {"x": self.section()})

    def test_empty_sections_rejected(self):
        with pytest.raises(ValueError, match="at least one section"):
            build_diff_report("run", "a", "b", {})

    def test_loader_rejects_wrong_version(self):
        report = build_diff_report("trace", "a", "b", {"trace": self.section()})
        report["schema_version"] = 999
        with pytest.raises(ValueError, match="schema_version"):
            load_diff(report)

    def test_loader_rejects_truncated_document(self):
        report = build_diff_report("trace", "a", "b", {"trace": self.section()})
        del report["divergences"]
        with pytest.raises(ValueError, match="missing fields"):
            load_diff(report)

    def test_loader_rejects_empty_section_map(self):
        report = build_diff_report("trace", "a", "b", {"trace": self.section()})
        report["sections"] = {}
        with pytest.raises(ValueError, match="no sections"):
            load_diff(report)

    def test_write_diff_is_byte_deterministic(self, tmp_path):
        report = build_diff_report("run", "a", "b", {
            "metrics": self.section(identical=False, divergences=1),
        })
        p1 = write_diff(report, tmp_path / "one.json")
        p2 = write_diff(report, tmp_path / "two.json")
        assert p1.read_bytes() == p2.read_bytes()
        assert load_diff(json.loads(p1.read_text()))["divergences"] == 1


# ----------------------------------------------------------------------
# Bench diff (metric classification + waterfall)
# ----------------------------------------------------------------------
class TestBenchDiff:
    def test_identical_documents_diff_empty(self):
        section = diff_bench_docs(make_bench_doc(), make_bench_doc())
        assert section["identical"] is True
        assert section["divergences"] == 0
        cells = section["scenarios"]["mix2_shared"]["metrics"]
        assert all(c["classification"] == "neutral" for c in cells.values())

    def test_simulated_latency_growth_is_a_regression(self):
        section = diff_bench_docs(
            make_bench_doc(read_us=100.0), make_bench_doc(read_us=120.0)
        )
        cell = section["scenarios"]["mix2_shared"]["metrics"]["sim_mean_read_us"]
        assert cell["classification"] == "regressed"
        assert cell["delta"] == pytest.approx(20.0)
        assert cell["delta_pct"] == pytest.approx(20.0)
        assert section["regressions"] == 1
        assert section["identical"] is False

    def test_simulated_latency_drop_is_an_improvement(self):
        section = diff_bench_docs(
            make_bench_doc(read_us=100.0), make_bench_doc(read_us=80.0)
        )
        cell = section["scenarios"]["mix2_shared"]["metrics"]["sim_mean_read_us"]
        assert cell["classification"] == "improved"
        assert section["regressions"] == 0
        assert section["improvements"] == 1

    def test_throughput_is_higher_better(self):
        section = diff_bench_docs(
            make_bench_doc(rps=1000.0), make_bench_doc(rps=500.0),
            wall_tolerance_pct=10.0,
        )
        cell = section["scenarios"]["mix2_shared"]["metrics"]["requests_per_s"]
        assert cell["classification"] == "regressed"

    def test_wall_clock_within_tolerance_is_neutral(self):
        section = diff_bench_docs(
            make_bench_doc(wall_s=0.50), make_bench_doc(wall_s=0.54),
            wall_tolerance_pct=10.0,
        )
        cell = section["scenarios"]["mix2_shared"]["metrics"]["wall_s"]
        assert cell["classification"] == "neutral"

    def test_wall_clock_under_noise_floor_is_neutral(self):
        # 3x slower, but both sides sat under the bench noise floor
        section = diff_bench_docs(
            make_bench_doc(wall_s=0.003, rps=1000.0),
            make_bench_doc(wall_s=0.009, rps=1000.0),
            wall_tolerance_pct=0.0,
        )
        cell = section["scenarios"]["mix2_shared"]["metrics"]["wall_s"]
        assert cell["classification"] == "neutral"

    def test_quick_full_mismatch_rejected(self):
        with pytest.raises(ValueError, match="quick"):
            diff_bench_docs(make_bench_doc(quick=True),
                            make_bench_doc(quick=False))

    def test_waterfall_present_when_both_sides_attributed(self):
        section = diff_bench_docs(
            make_bench_doc(phases={"bus_us": 100.0, "gc_stall_us": 50.0}),
            make_bench_doc(phases={"bus_us": 160.0, "gc_stall_us": 70.0}),
        )
        rows = section["scenarios"]["mix2_shared"]["waterfall"]
        assert rows[0]["phase"] == "bus_us"  # heaviest shift first
        assert rows[0]["delta_us"] == pytest.approx(60.0)
        assert rows[0]["share"] == pytest.approx(0.75)
        assert sum(r["share"] for r in rows) == pytest.approx(1.0)

    def test_waterfall_absent_without_attribution(self):
        section = diff_bench_docs(make_bench_doc(), make_bench_doc())
        assert "waterfall" not in section["scenarios"]["mix2_shared"]

    def test_disjoint_scenarios_listed_not_compared(self):
        section = diff_bench_docs(
            make_bench_doc(scenario="gc_heavy"),
            make_bench_doc(scenario="faulted"),
        )
        assert section["only_in_a"] == ["gc_heavy"]
        assert section["only_in_b"] == ["faulted"]
        assert section["scenarios"] == {}


class TestPhaseWaterfall:
    def test_missing_phases_count_as_zero(self):
        rows = phase_waterfall({"bus_us": 10.0}, {"die_us": 4.0})
        by_phase = {r["phase"]: r for r in rows}
        assert by_phase["bus_us"]["delta_us"] == pytest.approx(-10.0)
        assert by_phase["die_us"]["delta_us"] == pytest.approx(4.0)

    def test_ties_rank_by_phase_name(self):
        rows = phase_waterfall({"b_us": 0.0, "a_us": 0.0},
                               {"b_us": 5.0, "a_us": 5.0})
        assert [r["phase"] for r in rows] == ["a_us", "b_us"]

    def test_no_shift_means_zero_shares(self):
        rows = phase_waterfall({"bus_us": 10.0}, {"bus_us": 10.0})
        assert rows[0]["share"] == 0.0


# ----------------------------------------------------------------------
# Trace diff
# ----------------------------------------------------------------------
class TestTraceDiff:
    def stream(self):
        return [
            ev(1.0, "arrive", "w0"),
            ev(2.0, "channel_acquire", "ch1"),
            ev(3.0, "die_busy", "die2", dur_us=5.0),
        ]

    def test_identical_streams(self):
        section = diff_traces(self.stream(), self.stream())
        assert section["identical"] is True
        assert section["first_divergence"] is None
        assert section["divergent_events"] == 0
        assert section["compared"] == 3

    def test_first_fork_is_localized_with_actor(self):
        b = self.stream()
        b[1] = ev(2.5, "channel_acquire", "ch1")
        section = diff_traces(self.stream(), b)
        first = section["first_divergence"]
        assert first["index"] == 1
        assert first["time_us_a"] == 2.0
        assert first["time_us_b"] == 2.5
        assert first["kind"] == "channel_acquire"
        assert first["channel"] == 1
        assert section["divergent_events"] == 1

    def test_kind_mismatch_names_both_sides(self):
        b = self.stream()
        b[2] = ev(3.0, "gc_start", "die2")
        first = diff_traces(self.stream(), b)["first_divergence"]
        assert first["kind"] == "die_busy->gc_start"
        assert first["die"] == 2

    def test_strict_prefix_diverges_at_missing_event(self):
        section = diff_traces(self.stream(), self.stream()[:2])
        first = section["first_divergence"]
        assert first["index"] == 2
        assert first["b"] is None
        assert first["time_us_b"] is None
        assert first["kind"] == "die_busy->None"
        assert section["divergent_events"] == 1
        assert section["identical"] is False

    def test_tenant_from_wid_arg_when_track_is_opaque(self):
        a = [ev(1.0, "arrive", "queue", args={"wid": 3})]
        b = [ev(1.5, "arrive", "queue", args={"wid": 3})]
        first = diff_traces(a, b)["first_divergence"]
        assert first["tenant"] == 3

    def test_downstream_counts_include_length_difference(self):
        a = self.stream()
        b = [ev(0.5, "other", "w1")] + self.stream()
        section = diff_traces(a, b)
        assert section["first_divergence"]["index"] == 0
        # every compared position mismatches plus the length overhang
        assert section["divergent_events"] == 4


# ----------------------------------------------------------------------
# Critical-path diff
# ----------------------------------------------------------------------
class TestCritpathDiff:
    def test_identical_reports_diff_empty(self):
        doc = make_critpath({"ch0": {"wait_us": 10.0, "service_us": 30.0}})
        section = diff_critpath_docs(doc, copy.deepcopy(doc))
        assert section["identical"] is True
        assert section["top_shift"] is None
        assert section["top_resource_shift"] is None

    def test_grown_channel_tops_the_shift_table(self):
        a = make_critpath(
            {"ch0": {"service_us": 30.0}, "die1": {"service_us": 20.0}},
            makespan_us=100.0,
        )
        b = make_critpath(
            {"ch0": {"service_us": 75.0}, "die1": {"service_us": 25.0}},
            makespan_us=150.0,
        )
        section = diff_critpath_docs(a, b)
        assert section["top_shift"] == "ch0"
        assert section["top_resource_shift"] == "ch0"
        assert section["shifts"][0]["delta_us"] == pytest.approx(45.0)
        assert section["makespan"]["classification"] == "regressed"
        assert section["regressions"] == 1
        assert section["bottleneck_a"] == "ch0"

    def test_host_pseudo_bucket_never_wins_top_resource_shift(self):
        a = make_critpath({"ch0": {"service_us": 30.0}}, host=10.0)
        b = make_critpath({"ch0": {"service_us": 40.0}}, host=90.0)
        section = diff_critpath_docs(a, b)
        assert section["top_shift"] == "host"
        assert section["top_resource_shift"] == "ch0"

    def test_improved_makespan_is_not_a_regression(self):
        a = make_critpath({"ch0": {"service_us": 50.0}}, makespan_us=100.0)
        b = make_critpath({"ch0": {"service_us": 25.0}}, makespan_us=75.0)
        section = diff_critpath_docs(a, b)
        assert section["regressions"] == 0
        assert section["makespan"]["classification"] == "improved"

    def test_invalid_report_rejected(self):
        doc = make_critpath({"ch0": {"service_us": 1.0}})
        bad = copy.deepcopy(doc)
        bad["schema_version"] = 999
        with pytest.raises(ValueError, match="schema_version"):
            diff_critpath_docs(doc, bad)


# ----------------------------------------------------------------------
# Fleet device diff
# ----------------------------------------------------------------------
class TestFleetDeviceDiff:
    def test_device_against_itself_is_identical(self):
        section = diff_fleet_devices(make_fleet_doc(), 0, 0)
        assert section["identical"] is True
        assert section["divergences"] == 0

    def test_slower_device_regresses_latency_metrics(self):
        section = diff_fleet_devices(make_fleet_doc(), 0, 1)
        assert section["identical"] is False
        assert section["metrics"]["makespan_us"]["classification"] == "regressed"
        assert section["metrics"]["failed_reads"]["classification"] == "regressed"
        assert section["device_a"] == 0
        assert section["device_b"] == 1

    def test_missing_device_raises_diff_error(self):
        with pytest.raises(DiffError, match="no device 9"):
            diff_fleet_devices(make_fleet_doc(), 0, 9)


# ----------------------------------------------------------------------
# Run diff (exact re-simulation)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_scenario():
    kind, requests, cfg, sets, faults = SCENARIOS["mix2_shared"](200)
    assert kind == "simulator"
    return requests, cfg, sets, faults


@pytest.fixture(scope="module")
def self_report(small_scenario):
    requests, cfg, sets, faults = small_scenario
    return diff_run(requests, cfg, sets, faults=faults)


@pytest.fixture(scope="module")
def scaled_report(small_scenario):
    requests, cfg, sets, faults = small_scenario
    cfg_b = cfg.scale_knob("bus_bandwidth", 0.25)
    return diff_run(requests, cfg, sets, cfg_b, faults=faults,
                    label_a="base", label_b="slow-bus")


class TestRunDiff:
    def test_self_diff_is_provably_empty(self, self_report):
        assert self_report["identical"] is True
        assert self_report["divergences"] == 0
        assert self_report["regressions"] == 0
        trace = self_report["sections"]["trace"]
        assert trace["first_divergence"] is None
        assert trace["events_a"] == trace["events_b"] > 0
        assert self_report["sections"]["critpath"]["top_shift"] is None

    def test_self_diff_validates_and_serialises(self, self_report, tmp_path):
        path = write_diff(load_diff(self_report), tmp_path / "self.json")
        assert json.loads(path.read_text())["kind"] == "run"

    def test_scaled_knob_localizes_first_divergence(self, scaled_report):
        assert scaled_report["identical"] is False
        trace = scaled_report["sections"]["trace"]
        first = trace["first_divergence"]
        assert first is not None
        assert isinstance(first["index"], int)
        # a slower bus first shows up as a channel-side event
        assert first["channel"] is not None
        assert trace["divergent_events"] > 0

    def test_scaled_knob_regresses_latency_metrics(self, scaled_report):
        cells = scaled_report["sections"]["metrics"]["metrics"]
        assert cells["total_latency_us"]["classification"] == "regressed"
        assert scaled_report["regressions"] > 0

    def test_scaled_knob_shifts_critical_path(self, scaled_report):
        critpath = scaled_report["sections"]["critpath"]
        assert critpath["top_shift"] is not None
        assert critpath["makespan"]["classification"] == "regressed"

    def test_labels_carried_into_report(self, scaled_report):
        assert scaled_report["label_a"] == "base"
        assert scaled_report["label_b"] == "slow-bus"

    def test_report_is_byte_deterministic(self, small_scenario, scaled_report):
        requests, cfg, sets, faults = small_scenario
        cfg_b = cfg.scale_knob("bus_bandwidth", 0.25)
        again = diff_run(requests, cfg, sets, cfg_b, faults=faults,
                         label_a="base", label_b="slow-bus")
        assert (json.dumps(again, sort_keys=True)
                == json.dumps(scaled_report, sort_keys=True))

    def test_keep_events_carries_streams_out_of_band(self, small_scenario):
        requests, cfg, sets, faults = small_scenario
        report = diff_run(requests, cfg, sets, faults=faults, keep_events=True)
        events_a = report.pop("_events_a")
        events_b = report.pop("_events_b")
        assert events_a == events_b
        assert events_a and isinstance(events_a[0], dict)
        load_diff(report)  # valid once the carry-alongs are popped

    def test_truncated_ring_is_refused(self, small_scenario):
        requests, cfg, sets, faults = small_scenario
        with pytest.raises(DiffError, match="trace ring evicted"):
            diff_run(requests, cfg, sets, faults=faults, trace_capacity=64)

    def test_stateful_injector_is_rejected(self, small_scenario):
        from repro.ssd.faults import FaultConfig, FaultInjector

        requests, cfg, sets, _ = small_scenario
        injector = FaultInjector(FaultConfig(seed=3))
        with pytest.raises(TypeError, match="FaultConfig"):
            diff_run(requests, cfg, sets, faults=injector)
