"""Observability.export(): attribution, fault and keeper sections."""

from repro.obs import Observability


class FakeDecision:
    """Duck-typed keeper decision (the export only reads these fields)."""

    def __init__(self, time_us, fallback_reason=None):
        self.time_us = time_us
        self.fallback_reason = fallback_reason

    def to_dict(self):
        return {"time_us": self.time_us,
                "fallback_reason": self.fallback_reason}


class TestExportSections:
    def test_bare_export_has_no_optional_sections(self):
        out = Observability().export()
        for section in ("attribution", "faults", "keeper",
                        "keeper_decisions", "utilization"):
            assert section not in out

    def test_attribution_section(self):
        obs = Observability(attribution=True)
        out = obs.export()
        assert out["attribution"]["requests"] == 0
        assert "phase_totals_us" in out["attribution"]
        assert "gc" in out["attribution"]

    def test_faults_section_collects_counters_and_gauges(self):
        obs = Observability()
        obs.registry.counter("faults.read_retries").inc(3)
        obs.registry.gauge("faults.channel.0.error_rate").set(0.25)
        obs.registry.counter("sim.requests").inc()  # not a fault metric
        out = obs.export()
        assert out["faults"] == {
            "faults.read_retries": 3,
            "faults.channel.0.error_rate": 0.25,
        }

    def test_keeper_section_reports_fallbacks_and_health(self):
        obs = Observability()
        obs.registry.counter("keeper.fallbacks").inc(2)
        obs.decisions.append(FakeDecision(100.0))
        obs.decisions.append(FakeDecision(200.0, "unhealthy prediction"))
        out = obs.export()
        assert out["keeper"]["fallbacks"] == 2
        health = out["keeper"]["prediction_health"]
        assert [h["healthy"] for h in health] == [True, False]
        assert health[1]["reason"] == "unhealthy prediction"
        assert health[1]["time_us"] == 200.0

    def test_keeper_section_present_with_decisions_but_no_counter(self):
        obs = Observability()
        obs.decisions.append(FakeDecision(50.0))
        out = obs.export()
        assert out["keeper"]["fallbacks"] == 0
        assert len(out["keeper"]["prediction_health"]) == 1
