"""Fleet observability plane: federation, rollups, report round-trip."""

import json

import pytest

from repro.obs.fleet import (
    FLEET_SCHEMA_VERSION,
    FleetRegistry,
    FleetSloRollup,
    build_fleet_report,
    device_health,
    load_fleet,
    merge_histograms,
    write_fleet_report,
)
from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.slo import SloSpec, SloWatchdog
from repro.obs.trace import TraceRecorder

BOUNDS = [10.0, 100.0, 1000.0]


def hist(name, samples):
    h = Histogram(name, BOUNDS)
    for s in samples:
        h.observe(s)
    return h


class TestMergeHistograms:
    def test_merged_equals_single_registry_over_all_samples(self):
        a = hist("lat", [5.0, 50.0, 500.0])
        b = hist("lat", [7.0, 5000.0])
        merged = merge_histograms("lat", [a, b])
        combined = hist("lat", [5.0, 50.0, 500.0, 7.0, 5000.0])
        assert merged.counts == combined.counts
        assert merged.count == combined.count
        assert merged.total == combined.total
        assert merged.min == combined.min
        assert merged.max == combined.max

    def test_empty_histograms_contribute_nothing(self):
        a = hist("lat", [50.0])
        b = hist("lat", [])
        merged = merge_histograms("lat", [a, b])
        assert merged.count == 1
        assert merged.min == 50.0

    def test_refuses_mismatched_bounds(self):
        a = hist("lat", [1.0])
        b = Histogram("lat", [1.0, 2.0])
        with pytest.raises(ValueError):
            merge_histograms("lat", [a, b])

    def test_refuses_empty_input(self):
        with pytest.raises(ValueError):
            merge_histograms("lat", [])


class TestDeviceHealth:
    def test_clean_device_scores_one(self):
        registry = MetricsRegistry()
        registry.counter("sim.requests").value = 100
        assert device_health(registry) == 1.0

    def test_failed_reads_scale_down(self):
        registry = MetricsRegistry()
        registry.counter("sim.requests").value = 100
        registry.counter("sim.failed_reads").value = 10
        assert device_health(registry) == pytest.approx(0.9)

    def test_keeper_fallback_halves(self):
        registry = MetricsRegistry()
        registry.counter("sim.requests").value = 100
        registry.counter("keeper.fallbacks").value = 1
        assert device_health(registry) == pytest.approx(0.5)

    def test_unhealthy_gauge_halves(self):
        registry = MetricsRegistry()
        registry.counter("sim.requests").value = 10
        registry.gauge("keeper.prediction_healthy").set(0.0)
        assert device_health(registry) == pytest.approx(0.5)


class TestFleetRegistry:
    def make_devices(self):
        fr = FleetRegistry()
        for dev in range(2):
            reg = MetricsRegistry()
            reg.counter("sim.requests").value = 100 * (dev + 1)
            h = reg.histogram("sim.read_latency_us", BOUNDS)
            h.observe(5.0 * (dev + 1))
            h.observe(500.0)
            fr.attach(dev, reg)
        return fr

    def test_rejects_duplicate_attach(self):
        fr = FleetRegistry()
        fr.attach(0, MetricsRegistry())
        with pytest.raises(ValueError):
            fr.attach(0, MetricsRegistry())

    def test_counters_sum_across_devices(self):
        merged = self.make_devices().federate()
        assert merged.get("sim.requests").value == 300

    def test_histograms_merge_exactly(self):
        fr = self.make_devices()
        merged = fr.federate()
        manual = merge_histograms(
            "sim.read_latency_us",
            [fr.devices[d].get("sim.read_latency_us") for d in (0, 1)],
        )
        out = merged.get("sim.read_latency_us")
        assert out.counts == manual.counts
        assert out.count == manual.count
        assert out.total == manual.total

    def test_device_health_gauges_and_device_count(self):
        merged = self.make_devices().federate()
        snap = merged.snapshot()
        assert snap["gauges"]["fleet.device.0.health"] == 1.0
        assert snap["gauges"]["fleet.device.1.health"] == 1.0
        assert snap["counters"]["fleet.devices"] == 2

    def test_live_fleet_metrics_copied_last(self):
        fr = self.make_devices()
        fr.fleet.counter("fleet.migrations").value = 3
        merged = fr.federate()
        assert merged.get("fleet.migrations").value == 3


def window(seq, t_end, fractions_hist=None):
    """Minimal telemetry window carrying one violating latency histogram."""
    hist_section = {}
    if fractions_hist is not None:
        hist_section["sim.tenant.0.read_latency_us"] = fractions_hist
    return {
        "t_start_us": t_end - 500.0,
        "t_end_us": t_end,
        "seq": seq,
        "counters": {},
        "histograms": hist_section,
        "gauges": {},
        "resources": {},
    }


def violating_hist():
    # every sample above the 10us target bucket -> violation fraction 1.0
    return {"count": 4, "sum": 4000.0, "bounds": [10.0], "buckets": [0, 4]}


def spec():
    return SloSpec.from_dict({
        "window_us": 500.0,
        "tenants": {"0": {"read_p95_us": 10.0}},
    }, known_tenants={0})


class TestFleetSloRollup:
    def run_windows(self, n_windows, n_devices=2):
        s = spec()
        registry = MetricsRegistry()
        trace = TraceRecorder()
        rollup = FleetSloRollup(s, registry=registry, trace=trace)
        watchdogs = [SloWatchdog(s) for _ in range(n_devices)]
        for i in range(n_windows):
            for dev, wd in enumerate(watchdogs):
                w = window(i, (i + 1) * 500.0, violating_hist())
                feed = rollup.feed(dev, wd)
                feed.observe(w)
        return rollup, registry, trace

    def test_windows_counted(self):
        rollup, registry, _ = self.run_windows(3)
        assert rollup.windows_observed == 6  # 3 windows x 2 devices
        assert registry.get("fleet.slo.windows").value == 6

    def test_sustained_violation_pages_fleet_wide(self):
        rollup, registry, trace = self.run_windows(14)
        severities = [a.severity for a in rollup.alerts]
        assert "page" in severities
        page = next(a for a in rollup.alerts if a.severity == "page")
        assert page.objective == "tenant0.read_p95_us"
        assert page.device in (0, 1)
        assert page.fleet_fast_burn >= rollup.spec.fast.page_burn
        assert registry.get("fleet.slo.page_alerts").value >= 1
        assert trace.events("fleet_slo_alert")

    def test_alerts_are_edge_triggered(self):
        rollup, _, _ = self.run_windows(30)
        # severity only escalates once per objective without a downgrade
        assert len([a for a in rollup.alerts if a.severity == "page"]) == 1

    def test_no_violation_no_alerts(self):
        s = spec()
        rollup = FleetSloRollup(s)
        wd = SloWatchdog(s)
        clean = {"count": 4, "sum": 8.0, "bounds": [10.0], "buckets": [4, 0]}
        for i in range(20):
            rollup.feed(0, wd).observe(window(i, (i + 1) * 500.0, clean))
        assert rollup.alerts == []
        assert rollup.summary()["page_alerts"] == 0

    def test_device_watchdog_still_evaluates(self):
        s = spec()
        rollup = FleetSloRollup(s)
        wd = SloWatchdog(s)
        for i in range(14):
            rollup.feed(0, wd).observe(
                window(i, (i + 1) * 500.0, violating_hist())
            )
        assert wd.windows_evaluated == 14
        assert any(a.severity == "page" for a in wd.alerts)


class TestFleetReportRoundTrip:
    def minimal_report(self):
        from repro.ssd.fleet import FleetResult, MigrationRecord
        from repro.ssd.metrics import OpStats, SimulationResult

        result = SimulationResult(
            read=OpStats(), write=OpStats(), per_workload={},
            makespan_us=10.0, requests=2, subrequests=2,
        )
        fr = FleetResult(
            results=[result],
            placement_initial={0: 0},
            placement_final={0: 0},
            migrations=[MigrationRecord(
                tenant=0, src=0, dst=0, start_us=1.0,
                requests_replayed=2, first_dst_complete_us=3.5,
            )],
            completions=[{0: 2}],
            makespan_us=10.0,
            events=5,
        )
        return build_fleet_report(fr, seed=7)

    def test_round_trip(self, tmp_path):
        doc = self.minimal_report()
        path = tmp_path / "fleet_report.json"
        write_fleet_report(doc, path)
        loaded = load_fleet(json.loads(path.read_text()))
        assert loaded["schema_version"] == FLEET_SCHEMA_VERSION
        assert loaded["seed"] == 7
        assert loaded["migrations"][0]["span_us"] == pytest.approx(2.5)

    def test_reader_rejects_wrong_version(self):
        doc = self.minimal_report()
        doc["schema_version"] = 999
        with pytest.raises(ValueError, match="schema_version"):
            load_fleet(doc)

    def test_reader_rejects_truncated_document(self):
        doc = self.minimal_report()
        del doc["placement"]
        with pytest.raises(ValueError, match="missing fields"):
            load_fleet(doc)

    def test_reader_rejects_malformed_device_entry(self):
        doc = self.minimal_report()
        doc["devices"][0]["device"] = "zero"
        with pytest.raises(ValueError, match="device entry"):
            load_fleet(doc)

    def test_reader_rejects_non_finite_span(self):
        doc = self.minimal_report()
        doc["migrations"][0]["span_us"] = float("inf")
        with pytest.raises(ValueError, match="span"):
            load_fleet(doc)

    def test_write_is_deterministic(self, tmp_path):
        doc = self.minimal_report()
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        write_fleet_report(doc, p1)
        write_fleet_report(self.minimal_report(), p2)
        assert p1.read_bytes() == p2.read_bytes()
