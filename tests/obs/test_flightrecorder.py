"""FlightRecorder bundle layout, manifest contents, dedup."""

import json

from repro.obs import (
    FLIGHT_SCHEMA_VERSION,
    FlightRecorder,
    Observability,
    SloSpec,
)

REQUIRED_MANIFEST_KEYS = {
    "schema_version", "trigger", "detail", "time_us", "context",
    "replay", "bundle_files",
}


def read_json(path):
    return json.loads(path.read_text())


class TestBareDump:
    def test_manifest_written_with_required_keys(self, tmp_path):
        rec = FlightRecorder(tmp_path, context={"scale": "smoke"},
                             replay_argv=["python", "-m", "repro", "stats"])
        bundle = rec.dump("slo-page", detail="tenant0.read_p95_us",
                         time_us=123.0)
        assert bundle == tmp_path / "bundle-00-slo-page"
        manifest = read_json(bundle / "manifest.json")
        assert REQUIRED_MANIFEST_KEYS <= set(manifest)
        assert manifest["schema_version"] == FLIGHT_SCHEMA_VERSION
        assert manifest["trigger"] == "slo-page"
        assert manifest["detail"] == "tenant0.read_p95_us"
        assert manifest["time_us"] == 123.0
        assert manifest["context"] == {"scale": "smoke"}

    def test_replay_command_is_shell_quoted_argv(self, tmp_path):
        rec = FlightRecorder(
            tmp_path,
            replay_argv=["python", "-m", "repro", "stats",
                         "--slo", "my spec.json"],
        )
        manifest = read_json(rec.dump("exception") / "manifest.json")
        assert manifest["replay"]["argv"][-1] == "my spec.json"
        assert manifest["replay"]["command"].endswith("--slo 'my spec.json'")

    def test_no_replay_argv_means_not_replayable(self, tmp_path):
        rec = FlightRecorder(tmp_path)
        manifest = read_json(rec.dump("exception") / "manifest.json")
        assert manifest["replay"] == {
            "argv": None, "command": None,
            "explain_argv": None, "explain_command": None,
        }

    def test_explain_command_recorded(self, tmp_path):
        rec = FlightRecorder(
            tmp_path,
            replay_argv=["python", "-m", "repro", "bench",
                         "--scenario", "gc_heavy"],
            explain_argv=["python", "-m", "repro", "explain",
                          "--scenario", "gc_heavy"],
        )
        manifest = read_json(rec.dump("slo-page") / "manifest.json")
        assert manifest["replay"]["explain_command"] == (
            "python -m repro explain --scenario gc_heavy"
        )

    def test_sections_omitted_without_sources(self, tmp_path):
        rec = FlightRecorder(tmp_path)
        bundle = rec.dump("unrecoverable-read")
        manifest = read_json(bundle / "manifest.json")
        assert manifest["bundle_files"] == ["manifest.json"]
        assert list(p.name for p in bundle.iterdir()) == ["manifest.json"]


class TestDedupAndSequencing:
    def test_dump_once_dedups_by_trigger(self, tmp_path):
        rec = FlightRecorder(tmp_path)
        first = rec.dump_once("slo-page", time_us=1.0)
        assert first is not None
        assert rec.dump_once("slo-page", time_us=2.0) is None
        other = rec.dump_once("unrecoverable-read", time_us=3.0)
        assert other is not None
        assert [b.name for b in rec.bundles] == [
            "bundle-00-slo-page", "bundle-01-unrecoverable-read",
        ]


class TestWithObservability:
    def test_full_bundle_sections(self, tmp_path):
        spec = SloSpec.from_dict({
            "window_us": 100.0,
            "tenants": {"0": {"read_p95_us": 50.0}},
        })
        rec = FlightRecorder(tmp_path)
        obs = Observability(trace=True, slo=spec, flight_recorder=rec)
        obs.registry.counter("sim.requests").inc(7)
        obs.trace.emit(1.0, "submit", "wid0")
        bundle = rec.dump("slo-page", time_us=5.0,
                          alert={"objective": "tenant0.read_p95_us"})
        manifest = read_json(bundle / "manifest.json")
        assert set(manifest["bundle_files"]) == {
            "manifest.json", "metrics.json", "trace.jsonl",
            "alerts.json", "telemetry_tail.json",
        }
        metrics = read_json(bundle / "metrics.json")
        assert metrics["counters"]["sim.requests"] == 7
        trace_lines = (bundle / "trace.jsonl").read_text().strip().splitlines()
        assert json.loads(trace_lines[0])["name"] == "submit"
        alerts = read_json(bundle / "alerts.json")
        assert alerts["triggering"]["objective"] == "tenant0.read_p95_us"
        assert alerts["history"] == []

    def test_trace_tail_truncates(self, tmp_path):
        rec = FlightRecorder(tmp_path, trace_tail=3)
        obs = Observability(trace=True, flight_recorder=rec)
        for i in range(10):
            obs.trace.emit(float(i), "submit", "wid0")
        bundle = rec.dump("exception")
        lines = (bundle / "trace.jsonl").read_text().strip().splitlines()
        assert len(lines) == 3
        assert json.loads(lines[0])["ts_us"] == 7.0


class TestCritpathSection:
    def test_bundle_carries_bottleneck_report(self, tmp_path):
        from repro.obs.attribution import RequestAttribution

        rec = FlightRecorder(tmp_path)
        obs = Observability(trace=False, attribution=True, flight_recorder=rec)
        obs.attribution.records.append(
            RequestAttribution(0, "read", 2, 60.0, die=3, arrival_us=0.0,
                               die_us=20.0, bus_us=40.0)
        )
        bundle = rec.dump("slo-page", time_us=60.0)
        manifest = read_json(bundle / "manifest.json")
        assert "critpath.json" in manifest["bundle_files"]
        critpath = read_json(bundle / "critpath.json")
        assert critpath["makespan_us"] == 60.0
        assert critpath["critical_requests"] == 1
        assert "die3" in critpath["resources"]

    def test_trigger_without_time_uses_last_completion(self, tmp_path):
        from repro.obs.attribution import RequestAttribution

        rec = FlightRecorder(tmp_path)
        obs = Observability(trace=False, attribution=True, flight_recorder=rec)
        obs.attribution.records.append(
            RequestAttribution(0, "write", 0, 200.0, die=0, arrival_us=10.0,
                               die_us=200.0)
        )
        critpath = read_json(rec.dump("exception") / "critpath.json")
        assert critpath["makespan_us"] == 210.0

    def test_no_records_no_critpath_section(self, tmp_path):
        rec = FlightRecorder(tmp_path)
        obs = Observability(trace=False, attribution=True, flight_recorder=rec)
        bundle = rec.dump("exception")
        manifest = read_json(bundle / "manifest.json")
        assert "critpath.json" not in manifest["bundle_files"]
        assert "attribution_tail.json" in manifest["bundle_files"]


class TestLastGoodDiff:
    def make_record(self, *, bus_us=40.0, die_us=20.0):
        from repro.obs.attribution import RequestAttribution

        return RequestAttribution(
            0, "read", 2, bus_us + die_us, die=3, arrival_us=0.0,
            bus_us=bus_us, die_us=die_us,
        )

    def test_bundle_gains_diff_json_against_last_good_phases(self, tmp_path):
        rec = FlightRecorder(tmp_path, last_good={
            "attribution": {
                "phase_totals_us": {"bus_us": 10.0, "die_us": 20.0},
            },
        })
        obs = Observability(trace=False, attribution=True, flight_recorder=rec)
        obs.attribution.records.append(self.make_record(bus_us=40.0))
        obs.attribution._phase_totals_us.update(bus_us=40.0, die_us=20.0)
        bundle = rec.dump("slo-page", time_us=60.0)
        manifest = read_json(bundle / "manifest.json")
        assert "diff.json" in manifest["bundle_files"]
        diff = read_json(bundle / "diff.json")
        assert diff["kind"] == "flight"
        assert diff["label_a"] == "last-known-good"
        rows = diff["sections"]["waterfall"]["phases"]
        assert rows[0]["phase"] == "bus_us"  # the heaviest shift leads
        assert rows[0]["delta_us"] == 30.0

    def test_diff_json_ranks_critpath_shift(self, tmp_path):
        # first run: the last-known-good reference
        good_rec = FlightRecorder(tmp_path / "good")
        good_obs = Observability(trace=False, attribution=True,
                                 flight_recorder=good_rec)
        good_obs.attribution.records.append(self.make_record(bus_us=40.0))
        good_doc = read_json(
            good_rec.dump("slo-page", time_us=60.0) / "critpath.json"
        )
        # second run: same trace shape, channel time doubled
        rec = FlightRecorder(tmp_path / "bad", last_good={
            "critpath": good_doc,
        })
        obs = Observability(trace=False, attribution=True, flight_recorder=rec)
        obs.attribution.records.append(self.make_record(bus_us=80.0))
        diff = read_json(rec.dump("slo-page", time_us=100.0) / "diff.json")
        critpath = diff["sections"]["critpath"]
        assert critpath["top_shift"] == "ch2"  # bus time lives on channel 2
        assert critpath["top_resource_shift"] == "ch2"

    def test_incompatible_reference_is_skipped_not_fatal(self, tmp_path):
        rec = FlightRecorder(tmp_path, last_good={
            "critpath": {"schema_version": 999},
        })
        obs = Observability(trace=False, attribution=True, flight_recorder=rec)
        obs.attribution.records.append(self.make_record())
        bundle = rec.dump("slo-page", time_us=60.0)
        manifest = read_json(bundle / "manifest.json")
        # the dump itself must survive; only the diff section is dropped
        assert "critpath.json" in manifest["bundle_files"]
        assert "diff.json" not in manifest["bundle_files"]

    def test_no_last_good_means_no_diff_json(self, tmp_path):
        rec = FlightRecorder(tmp_path)
        obs = Observability(trace=False, attribution=True, flight_recorder=rec)
        obs.attribution.records.append(self.make_record())
        manifest = read_json(rec.dump("slo-page", time_us=60.0)
                             / "manifest.json")
        assert "diff.json" not in manifest["bundle_files"]
