"""Utilization profiler over the DES engine."""

import pytest

from repro.obs import MetricsRegistry, UtilizationProfiler
from repro.ssd.engine import EventLoop, Resource


def busy_run(interval_us=10.0, jobs=5, service=8.0):
    """One channel + one die, back-to-back jobs on the channel."""
    loop = EventLoop()
    channel = Resource(loop, "ch0", kind="channel")
    die = Resource(loop, "die0", kind="die")
    for i in range(jobs):
        loop.schedule(
            i * service,
            lambda: channel.acquire((0,), service, lambda start: None),
        )
    profiler = UtilizationProfiler(interval_us)
    profiler.attach(loop, [channel], [die])
    loop.run()
    return loop, profiler


class TestUtilizationProfiler:
    def test_validates_interval(self):
        with pytest.raises(ValueError):
            UtilizationProfiler(0.0)

    def test_samples_cover_the_run(self):
        loop, profiler = busy_run()
        assert profiler.samples >= 4
        assert profiler.times_us == sorted(profiler.times_us)
        # row shape: one column per channel / die
        assert all(len(r) == 1 for r in profiler.channel_busy)
        assert all(len(r) == 1 for r in profiler.die_busy)

    def test_busy_fraction_integrates_to_booked_service_time(self):
        _, profiler = busy_run(interval_us=10.0, jobs=5, service=8.0)
        # busy time is booked at grant, so single windows may exceed 1.0,
        # but the series must integrate to the total service time (5 * 8us)
        windows = [profiler.times_us[0]] + [
            b - a for a, b in zip(profiler.times_us, profiler.times_us[1:])
        ]
        integral = sum(
            f * w for (f,), w in zip(profiler.channel_busy, windows)
        )
        assert integral == pytest.approx(5 * 8.0)
        assert all(row[0] >= 0.0 for row in profiler.channel_busy)
        # the idle die never accrues busy time
        assert all(row[0] == 0.0 for row in profiler.die_busy)

    def test_does_not_keep_empty_loop_alive(self):
        loop, profiler = busy_run(interval_us=10.0, jobs=2, service=5.0)
        assert not loop  # heap drained
        # final sample lands at most one interval past the last real event
        assert loop.now <= 2 * 5.0 + 10.0

    def test_flush_records_partial_tail_window(self):
        # a bounded run (`until=`) stops between interval boundaries, so
        # activity after the last sample is dropped unless flushed
        loop = EventLoop()
        channel = Resource(loop, "ch0", kind="channel")
        for when in (0.0, 12.0):
            loop.schedule(
                when,
                lambda: channel.acquire((0,), 8.0, lambda start: None),
            )
        profiler = UtilizationProfiler(10.0)
        profiler.attach(loop, [channel], [])
        loop.run(until=15.0)
        assert profiler.samples == 1  # only the t=10 boundary fired
        profiler.flush()
        assert profiler.samples == 2
        assert profiler.times_us[-1] == loop.now == 12.0
        # with the tail window included the series integrates to the
        # full booked service time (2 jobs x 8us)
        windows = [profiler.times_us[0]] + [
            b - a for a, b in zip(profiler.times_us, profiler.times_us[1:])
        ]
        integral = sum(
            f * w for (f,), w in zip(profiler.channel_busy, windows)
        )
        assert integral == pytest.approx(2 * 8.0)

    def test_flush_is_idempotent_and_safe_unattached(self):
        loop, profiler = busy_run()
        profiler.flush()
        samples = profiler.samples
        profiler.flush()  # zero-length window: no extra row
        assert profiler.samples == samples
        UtilizationProfiler(5.0).flush()  # never attached: no-op

    def test_queue_depth_counts_holder(self):
        loop = EventLoop()
        channel = Resource(loop, "ch0", kind="channel")
        # three simultaneous jobs: 1 holder + 2 waiters at t=5
        for _ in range(3):
            loop.schedule(
                0.0, lambda: channel.acquire((0,), 20.0, lambda s: None)
            )
        profiler = UtilizationProfiler(5.0)
        profiler.attach(loop, [channel], [])
        loop.run()
        assert profiler.channel_queue[0][0] == 3

    def test_channel_series(self):
        _, profiler = busy_run()
        series = profiler.channel_series(0)
        assert len(series) == profiler.samples
        assert series[0][0] == profiler.times_us[0]

    def test_publish_into_registry(self):
        _, profiler = busy_run()
        reg = MetricsRegistry()
        profiler.publish(reg)
        busy = reg.get("util.channel.0.busy")
        assert busy is not None and len(busy) == profiler.samples
        assert reg.get("util.channel.0.queue") is not None
        assert reg.get("util.die.0.busy") is not None

    def test_to_dict_is_plain_data(self):
        _, profiler = busy_run()
        doc = profiler.to_dict()
        assert doc["interval_us"] == 10.0
        assert len(doc["times_us"]) == profiler.samples
        assert len(doc["channel_busy"]) == profiler.samples
        assert len(doc["die_queue"]) == profiler.samples
