"""Metrics registry: counters, gauges, histograms, series."""

import json

import pytest

from repro.obs import DEFAULT_LATENCY_BUCKETS_US, Counter, Gauge, Histogram, MetricsRegistry, Series


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6
        assert c.snapshot() == 6


class TestGauge:
    def test_keeps_last_value(self):
        g = Gauge("x")
        g.set(1.5)
        g.set(2.5)
        assert g.value == 2.5


class TestHistogram:
    def test_counts_mean_min_max(self):
        h = Histogram("lat")
        for v in (1.0, 7.0, 150.0):
            h.observe(v)
        assert h.count == 3
        assert h.mean == pytest.approx(158.0 / 3)
        assert h.min == 1.0
        assert h.max == 150.0

    def test_bucket_assignment_and_overflow(self):
        h = Histogram("lat", buckets=[10.0, 100.0])
        h.observe(5.0)     # <= 10
        h.observe(50.0)    # <= 100
        h.observe(5000.0)  # overflow
        snap = h.snapshot()
        assert snap["buckets"] == {"10.0": 1, "100.0": 1, "+inf": 1}

    def test_percentiles_bounded_by_bucket_and_extremes(self):
        h = Histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        # p50 must land inside the bucket containing the true median (50.5)
        assert 20.0 <= h.p50 <= 100.0
        assert h.percentile(0) >= h.min - 1e-9
        assert h.percentile(100) == pytest.approx(h.max)
        assert h.p95 <= h.max
        assert h.p99 <= h.max

    def test_percentile_single_value(self):
        h = Histogram("lat")
        h.observe(42.0)
        assert h.p50 == pytest.approx(42.0)
        assert h.p99 == pytest.approx(42.0)

    def test_percentile_empty_is_zero(self):
        assert Histogram("lat").p95 == 0.0

    def test_percentile_validates_range(self):
        with pytest.raises(ValueError):
            Histogram("lat").percentile(101)

    def test_rejects_empty_buckets(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=[])

    def test_observe_many(self):
        h = Histogram("lat")
        h.observe_many([1.0, 2.0, 3.0])
        assert h.count == 3

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS_US) == sorted(
            DEFAULT_LATENCY_BUCKETS_US
        )


class TestSeries:
    def test_append_and_points(self):
        s = Series("train.loss")
        s.append(0, 1.5)
        s.append(1, 1.2)
        assert len(s) == 2
        assert s.points() == [(0, 1.5), (1, 1.2)]


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_get_without_creation(self):
        reg = MetricsRegistry()
        assert reg.get("missing") is None
        c = reg.counter("a")
        assert reg.get("a") is c

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert reg.names() == ["a", "b"]

    def test_snapshot_sections(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(10.0)
        reg.series("s").append(0, 2.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["series"]["s"] == {"x": [0], "values": [2.0]}

    def test_to_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        doc = json.loads(reg.to_json())
        assert doc["counters"]["c"] == 1
