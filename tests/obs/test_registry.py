"""Metrics registry: counters, gauges, histograms, series."""

import json

import pytest

from repro.obs import DEFAULT_LATENCY_BUCKETS_US, Counter, Gauge, Histogram, MetricsRegistry, Series


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6
        assert c.snapshot() == 6


class TestGauge:
    def test_keeps_last_value(self):
        g = Gauge("x")
        g.set(1.5)
        g.set(2.5)
        assert g.value == 2.5


class TestHistogram:
    def test_counts_mean_min_max(self):
        h = Histogram("lat")
        for v in (1.0, 7.0, 150.0):
            h.observe(v)
        assert h.count == 3
        assert h.mean == pytest.approx(158.0 / 3)
        assert h.min == 1.0
        assert h.max == 150.0

    def test_bucket_assignment_and_overflow(self):
        h = Histogram("lat", buckets=[10.0, 100.0])
        h.observe(5.0)     # <= 10
        h.observe(50.0)    # <= 100
        h.observe(5000.0)  # overflow
        snap = h.snapshot()
        assert snap["buckets"] == {"10.0": 1, "100.0": 1, "+inf": 1}

    def test_percentiles_bounded_by_bucket_and_extremes(self):
        h = Histogram("lat")
        for v in range(1, 101):
            h.observe(float(v))
        # p50 must land inside the bucket containing the true median (50.5)
        assert 20.0 <= h.p50 <= 100.0
        assert h.percentile(0) >= h.min - 1e-9
        assert h.percentile(100) == pytest.approx(h.max)
        assert h.p95 <= h.max
        assert h.p99 <= h.max

    def test_percentile_single_value(self):
        h = Histogram("lat")
        h.observe(42.0)
        assert h.p50 == pytest.approx(42.0)
        assert h.p99 == pytest.approx(42.0)

    def test_percentile_empty_is_zero(self):
        assert Histogram("lat").p95 == 0.0

    def test_percentile_validates_range(self):
        with pytest.raises(ValueError):
            Histogram("lat").percentile(101)

    def test_rejects_empty_buckets(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=[])

    def test_observe_many(self):
        h = Histogram("lat")
        h.observe_many([1.0, 2.0, 3.0])
        assert h.count == 3

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS_US) == sorted(
            DEFAULT_LATENCY_BUCKETS_US
        )


class TestSeries:
    def test_append_and_points(self):
        s = Series("train.loss")
        s.append(0, 1.5)
        s.append(1, 1.2)
        assert len(s) == 2
        assert s.points() == [(0, 1.5), (1, 1.2)]


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_get_without_creation(self):
        reg = MetricsRegistry()
        assert reg.get("missing") is None
        c = reg.counter("a")
        assert reg.get("a") is c

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert reg.names() == ["a", "b"]

    def test_snapshot_sections(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(10.0)
        reg.series("s").append(0, 2.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 3}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["series"]["s"] == {"x": [0], "values": [2.0]}

    def test_to_json_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        doc = json.loads(reg.to_json())
        assert doc["counters"]["c"] == 1


class TestAllZeroPercentile:
    def test_all_zero_samples_report_zero_percentiles(self):
        # regression: `if self.max` treated a legitimate max of 0.0 as
        # "unset", so p50 of all-zero samples interpolated up to ~2.5us
        h = Histogram("lat")
        h.observe_many([0.0] * 100)
        assert h.p50 == 0.0
        assert h.p95 == 0.0
        assert h.p99 == 0.0
        snap = h.snapshot()
        assert snap["min"] == 0.0 and snap["max"] == 0.0

    def test_empty_histogram_snapshot_extremes_are_zero(self):
        snap = Histogram("lat").snapshot()
        assert snap["min"] == 0.0
        assert snap["max"] == 0.0


class TestNonFiniteGuards:
    def test_histogram_drops_nan_and_inf(self):
        h = Histogram("lat")
        h.observe(5.0)
        h.observe(float("nan"))
        h.observe(float("inf"))
        h.observe(float("-inf"))
        assert h.count == 1
        assert h.dropped == 3
        assert h.mean == 5.0
        assert h.min == 5.0 and h.max == 5.0

    def test_observe_many_drops_only_the_poisoned_samples(self):
        h = Histogram("lat")
        h.observe_many([1.0, float("nan"), 3.0])
        assert h.count == 2
        assert h.dropped == 1
        assert h.total == 4.0

    def test_gauge_drops_non_finite_writes(self):
        g = Gauge("x")
        g.set(2.0)
        g.set(float("nan"))
        g.set(float("inf"))
        assert g.value == 2.0
        assert g.dropped == 2

    def test_registry_surfaces_dropped_samples_counter(self):
        reg = MetricsRegistry()
        reg.histogram("lat").observe(float("nan"))
        reg.gauge("g").set(float("inf"))
        assert reg.dropped_samples() == 2
        snap = reg.snapshot()
        assert snap["counters"]["obs.dropped_samples"] == 2

    def test_clean_registry_has_no_dropped_counter(self):
        reg = MetricsRegistry()
        reg.histogram("lat").observe(1.0)
        assert "obs.dropped_samples" not in reg.snapshot()["counters"]


class TestPercentileGolden:
    """Bucket-interpolated percentiles vs exact numpy on a seeded
    realistic latency distribution: error bounded by one bucket width."""

    def _bucket_width(self, value):
        import bisect

        bounds = list(DEFAULT_LATENCY_BUCKETS_US)
        i = bisect.bisect_left(bounds, value)
        if i == 0:
            return bounds[0]
        if i >= len(bounds):
            return bounds[-1] - bounds[-2]
        return bounds[i] - bounds[i - 1]

    def test_realistic_latency_distribution(self):
        import numpy as np

        rng = np.random.RandomState(42)
        # lognormal body (~100us median) plus a GC-stalled tail
        samples = np.concatenate([
            rng.lognormal(mean=np.log(100.0), sigma=0.8, size=4000),
            rng.lognormal(mean=np.log(5000.0), sigma=0.5, size=200),
        ])
        h = Histogram("lat")
        h.observe_many(samples.tolist())
        for q in (50, 95, 99):
            exact = float(np.percentile(samples, q))
            est = h.percentile(q)
            assert abs(est - exact) <= self._bucket_width(exact), (
                f"p{q}: est {est:.1f} vs exact {exact:.1f}"
            )

    def test_single_sample(self):
        h = Histogram("lat")
        h.observe(123.0)
        for q in (0, 50, 95, 99, 100):
            assert h.percentile(q) == 123.0

    def test_all_samples_in_open_inf_bucket(self):
        h = Histogram("lat", buckets=[10.0])
        h.observe_many([50.0, 60.0, 70.0])
        # the open bucket interpolates between the last bound (clamped to
        # min) and the observed max — estimates stay within [min, max]
        for q in (50, 95, 99):
            assert 50.0 <= h.percentile(q) <= 70.0
        assert h.percentile(100) == 70.0


class TestOpenMetrics:
    def test_exposition_covers_all_kinds_and_parses(self):
        import re

        reg = MetricsRegistry()
        reg.counter("sim.requests").inc(7)
        reg.gauge("sim.makespan_us").set(12.5)
        h = reg.histogram("sim.read_latency_us", buckets=[10.0, 100.0])
        h.observe_many([5.0, 50.0, 500.0])
        reg.series("util.ch0").append(1.0, 0.5)  # series are omitted
        text = reg.to_openmetrics()
        assert text.endswith("# EOF\n")
        assert "sim_requests_total 7" in text
        assert "sim_makespan_us 12.5" in text
        # cumulative buckets: 1 <= 10, 2 <= 100, 3 <= +Inf
        assert 'sim_read_latency_us_bucket{le="10"} 1' in text
        assert 'sim_read_latency_us_bucket{le="100"} 2' in text
        assert 'sim_read_latency_us_bucket{le="+Inf"} 3' in text
        assert "sim_read_latency_us_count 3" in text
        assert "util_ch0" not in text
        line_re = re.compile(
            r'^(# (TYPE|EOF).*|[a-zA-Z_][a-zA-Z0-9_]*'
            r'(\{le="[^"]+"\})? [-+0-9.eE]+(e[-+]?\d+)?)$'
        )
        for line in text.strip().splitlines():
            assert line_re.match(line), f"unparseable line: {line!r}"

    def test_dropped_samples_appear_in_exposition(self):
        reg = MetricsRegistry()
        reg.histogram("lat").observe(float("nan"))
        assert "obs_dropped_samples_total 1" in reg.to_openmetrics()

class TestOpenMetricsLabels:
    def make_registry(self):
        reg = MetricsRegistry()
        reg.counter("sim.requests").inc(7)
        reg.gauge("sim.makespan_us").set(12.5)
        h = reg.histogram("sim.read_latency_us", buckets=[10.0])
        h.observe(5.0)
        return reg

    def test_no_labels_output_is_unchanged(self):
        # the labelled path must be byte-identical to the historical
        # exposition when no label set is attached
        reg = self.make_registry()
        assert reg.to_openmetrics() == reg.to_openmetrics(labels=None)
        assert "sim_requests_total 7" in reg.to_openmetrics()

    def test_labels_attach_to_every_sample(self):
        text = self.make_registry().to_openmetrics(
            labels={"device": "0", "scenario": "gc_heavy"}
        )
        base = '{device="0",scenario="gc_heavy"}'
        assert f"sim_requests_total{base} 7" in text
        assert f"sim_makespan_us{base} 12.5" in text
        assert f"sim_read_latency_us_sum{base} 5" in text
        assert f"sim_read_latency_us_count{base} 1" in text
        # histogram buckets merge the constant labels with ``le``
        assert ('sim_read_latency_us_bucket{device="0",le="10",'
                'scenario="gc_heavy"} 1') in text
        assert ('sim_read_latency_us_bucket{device="0",le="+Inf",'
                'scenario="gc_heavy"} 1') in text

    def test_label_keys_render_sorted_for_determinism(self):
        text = self.make_registry().to_openmetrics(
            labels={"zeta": "1", "alpha": "2"}
        )
        assert 'sim_requests_total{alpha="2",zeta="1"} 7' in text

    def test_label_values_escaped_per_openmetrics_abnf(self):
        # golden line: backslash, double-quote, and newline must all
        # survive an exposition parser
        text = self.make_registry().to_openmetrics(
            labels={"scenario": 'a"b\\c\nd'}
        )
        golden = 'sim_requests_total{scenario="a\\"b\\\\c\\nd"} 7'
        assert golden in text
        assert "\n\n" not in text  # the raw newline never leaks through

    def test_backslash_escaped_before_quote_and_newline(self):
        # the regression the escape order guards against: a value ending
        # in a backslash must not swallow the closing quote
        text = self.make_registry().to_openmetrics(labels={"path": "C:\\"})
        assert 'sim_requests_total{path="C:\\\\"} 7' in text

    def test_dropped_samples_carry_the_label_set(self):
        reg = self.make_registry()
        reg.gauge("sim.makespan_us").set(float("inf"))
        text = reg.to_openmetrics(labels={"device": "3"})
        assert 'obs_dropped_samples_total{device="3"} 1' in text
