"""SloSpec validation and SloWatchdog burn-rate alerting."""

import json

import pytest

from repro.obs import MetricsRegistry, SloSpec, SloSpecError, SloWatchdog, TraceRecorder
from repro.obs.slo import BurnWindow


def spec_data(**overrides):
    data = {
        "schema_version": 1,
        "window_us": 100.0,
        "tenants": {"0": {"read_p95_us": 50.0}},
        "failed_read_budget": 0.02,
        "gc_stall_fraction": 0.5,
        "keeper_health_floor": 0.5,
        "burn": {
            "fast": {"windows": 2, "warn_burn": 2.0, "page_burn": 6.0},
            "slow": {"windows": 6, "warn_burn": 1.0, "page_burn": 3.0},
        },
    }
    data.update(overrides)
    return data


def window(seq, *, t_start_us=0.0, t_end_us=100.0, counters=None,
           histograms=None, resources=None):
    return {
        "kind": "window",
        "seq": seq,
        "t_start_us": t_start_us,
        "t_end_us": t_end_us,
        "events": 0,
        "counters": counters or {},
        "gauges": {},
        "histograms": histograms or {},
        "resources": resources or {},
    }


def latency_window(seq, *, fast_count, slow_count, bounds=(50.0, 100.0)):
    """A window with ``fast_count`` samples <= 50us, ``slow_count`` above."""
    return window(seq, histograms={
        "sim.tenant.0.read_latency_us": {
            "count": fast_count + slow_count,
            "sum": 0.0,
            "bounds": list(bounds),
            "buckets": [fast_count, slow_count, 0],
        }
    })


class TestSpecValidation:
    def test_round_trips_valid_spec(self):
        spec = SloSpec.from_dict(spec_data(), known_tenants={0, 1})
        assert spec.window_us == 100.0
        assert spec.tenants[0]["read_p95_us"] == 50.0
        assert spec.fast == BurnWindow(2, 2.0, 6.0)
        assert spec.to_dict()["window_us"] == 100.0

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(spec_data()))
        spec = SloSpec.load(path, known_tenants={0})
        assert spec.failed_read_budget == 0.02

    def test_unknown_tenant_rejected(self):
        with pytest.raises(SloSpecError) as exc:
            SloSpec.from_dict(spec_data(tenants={"7": {"read_p95_us": 1.0}}),
                              known_tenants={0, 1})
        assert exc.value.code == "unknown-tenant"

    def test_non_integer_tenant_rejected(self):
        with pytest.raises(SloSpecError) as exc:
            SloSpec.from_dict(spec_data(tenants={"abc": {}}))
        assert exc.value.code == "unknown-tenant"

    def test_non_positive_target_rejected(self):
        with pytest.raises(SloSpecError) as exc:
            SloSpec.from_dict(spec_data(tenants={"0": {"read_p99_us": 0.0}}))
        assert exc.value.code == "non-positive-target"

    def test_non_positive_window_rejected(self):
        with pytest.raises(SloSpecError) as exc:
            SloSpec.from_dict(spec_data(window_us=-1.0))
        assert exc.value.code == "non-positive-target"

    def test_out_of_range_budget_rejected(self):
        with pytest.raises(SloSpecError) as exc:
            SloSpec.from_dict(spec_data(failed_read_budget=1.5))
        assert exc.value.code == "non-positive-target"

    def test_overlapping_burn_windows_rejected(self):
        burn = {
            "fast": {"windows": 6, "warn_burn": 2.0, "page_burn": 6.0},
            "slow": {"windows": 6, "warn_burn": 1.0, "page_burn": 3.0},
        }
        with pytest.raises(SloSpecError) as exc:
            SloSpec.from_dict(spec_data(burn=burn))
        assert exc.value.code == "overlapping-burn-windows"

    def test_unknown_keys_rejected(self):
        with pytest.raises(SloSpecError) as exc:
            SloSpec.from_dict(spec_data(surprise=1))
        assert exc.value.code == "bad-spec"

    def test_unknown_target_key_rejected(self):
        with pytest.raises(SloSpecError) as exc:
            SloSpec.from_dict(spec_data(tenants={"0": {"p95": 1.0}}))
        assert exc.value.code == "bad-spec"

    def test_invalid_json_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SloSpecError) as exc:
            SloSpec.load(path)
        assert exc.value.code == "bad-spec"


class TestBurnRateAlerting:
    def make(self, **overrides):
        spec = SloSpec.from_dict(spec_data(**overrides))
        registry = MetricsRegistry()
        trace = TraceRecorder()
        return SloWatchdog(spec, registry=registry, trace=trace), registry, trace

    def test_clean_windows_raise_nothing(self):
        watchdog, registry, _ = self.make()
        for i in range(10):
            assert watchdog.observe(latency_window(i, fast_count=20, slow_count=0)) == []
        assert watchdog.alerts == []
        assert registry.get("slo.windows").value == 10
        assert registry.get("slo.page_alerts") is None

    def test_sustained_violation_escalates_to_page_once(self):
        watchdog, registry, trace = self.make()
        severities = []
        for i in range(6):
            for alert in watchdog.observe(latency_window(i, fast_count=0, slow_count=10)):
                severities.append(alert.severity)
        # every window violates 100% >> 5% allowed: burn is immediately
        # past both page thresholds, and the edge trigger fires once
        assert severities == ["page"]
        assert registry.get("slo.page_alerts").value == 1
        events = trace.events("slo_alert")
        assert len(events) == 1
        assert events[0].args["severity"] == "page"

    def test_warn_then_page_then_rearm_after_recovery(self):
        watchdog, _, _ = self.make()
        fired = []
        # warm the slow window with clean history first
        for i in range(6):
            watchdog.observe(latency_window(i, fast_count=20, slow_count=0))
        # moderate violation: 15% of samples over target = burn 3 (fast
        # window mean) — above warn (2) but below page (6)
        for i in range(6, 9):
            fired += watchdog.observe(latency_window(i, fast_count=17, slow_count=3))
        assert [a.severity for a in fired] == ["warn"]
        # total violation escalates the same objective to page
        for i in range(9, 12):
            fired += watchdog.observe(latency_window(i, fast_count=0, slow_count=20))
        assert [a.severity for a in fired] == ["warn", "page"]
        # full recovery drains the windows and re-arms the edge trigger
        for i in range(12, 24):
            fired += watchdog.observe(latency_window(i, fast_count=20, slow_count=0))
        assert [a.severity for a in fired] == ["warn", "page"]
        for i in range(24, 27):
            fired += watchdog.observe(latency_window(i, fast_count=0, slow_count=20))
        assert [a.severity for a in fired] == ["warn", "page", "page"]

    def test_failed_read_budget_objective(self):
        watchdog, _, _ = self.make(tenants={})
        fired = []
        for i in range(6):
            fired += watchdog.observe(window(i, counters={
                "sim.requests": 10, "sim.failed_reads": 5,
            }))
        assert any(a.objective == "failed_reads" and a.severity == "page"
                   for a in fired)

    def test_gc_stall_objective(self):
        watchdog, _, _ = self.make(tenants={}, gc_stall_fraction=0.1)
        fired = []
        for i in range(6):
            fired += watchdog.observe(window(
                i, t_start_us=i * 100.0, t_end_us=(i + 1) * 100.0,
                resources={"gc_busy_us": [95.0, 95.0]},
            ))
        assert any(a.objective == "gc_stall" for a in fired)

    def test_keeper_health_objective(self):
        watchdog, _, _ = self.make(tenants={})
        fired = []
        for i in range(6):
            fired += watchdog.observe(window(i, counters={"keeper.fallbacks": 1}))
        assert any(a.objective == "keeper_health" for a in fired)

    def test_summary_rollup(self):
        watchdog, _, _ = self.make()
        for i in range(6):
            watchdog.observe(latency_window(i, fast_count=0, slow_count=10))
        rollup = watchdog.summary()
        assert rollup["windows"] == 6
        assert rollup["page_alerts"] == 1
        assert rollup["alerts"][0]["objective"] == "tenant0.read_p95_us"

    def test_bucket_straddling_target_counts_as_violating(self):
        # conservative upper-bound rule: a bucket whose upper bound
        # exceeds the target is counted violating even though some of its
        # samples may be under it
        watchdog, _, _ = self.make(
            tenants={"0": {"read_p95_us": 75.0}}  # inside the 50..100 bucket
        )
        fired = []
        for i in range(6):
            fired += watchdog.observe(latency_window(i, fast_count=0, slow_count=10))
        assert any(a.severity == "page" for a in fired)
