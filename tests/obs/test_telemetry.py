"""TelemetrySink: delta-encoded windows, weak scheduling, JSONL stream."""

import json

import pytest

from repro.obs import MetricsRegistry, TelemetrySink, TELEMETRY_SCHEMA_VERSION
from repro.ssd.engine import EventLoop, Resource


def drive(loop, registry, *, end_us=10.0, step_us=2.0, inc=3):
    """Schedule strong work that bumps a counter every ``step_us``."""
    t = step_us
    while t <= end_us:
        def bump(t=t):
            registry.counter("work.items").inc(inc)
            registry.histogram("work.lat_us").observe(t * 10.0)

        loop.schedule(t, bump)
        t += step_us


class TestWindows:
    def test_counter_deltas_per_window(self):
        loop = EventLoop()
        registry = MetricsRegistry()
        drive(loop, registry, end_us=10.0, step_us=2.0, inc=3)
        sink = TelemetrySink(4.0)
        sink.attach(loop, registry)
        loop.run()
        sink.flush()
        # windows close at 4.0 and 8.0 (ticks) and 10.0 (flush)
        assert [w["t_end_us"] for w in sink.windows] == [4.0, 8.0, 10.0]
        assert [w["counters"]["work.items"] for w in sink.windows] == [6, 6, 3]
        # deltas reassemble into the final total
        assert sum(w["counters"]["work.items"] for w in sink.windows) == \
            registry.get("work.items").value

    def test_histogram_bucket_deltas_sum_to_totals(self):
        loop = EventLoop()
        registry = MetricsRegistry()
        drive(loop, registry, end_us=10.0, step_us=2.0)
        sink = TelemetrySink(4.0)
        sink.attach(loop, registry)
        loop.run()
        sink.flush()
        hist = registry.get("work.lat_us")
        per_bucket = [0] * len(hist.counts)
        total_count = 0
        for w in sink.windows:
            entry = w["histograms"]["work.lat_us"]
            total_count += entry["count"]
            for i, d in enumerate(entry["buckets"]):
                per_bucket[i] += d
        assert total_count == hist.count
        assert per_bucket == hist.counts

    def test_quiet_window_skips_unchanged_metrics(self):
        loop = EventLoop()
        registry = MetricsRegistry()
        registry.counter("work.items").inc(5)  # before baseline
        loop.schedule(1.0, lambda: None)
        loop.schedule(9.0, lambda: None)
        sink = TelemetrySink(4.0)
        sink.attach(loop, registry)
        loop.run()
        sink.flush()
        assert all("work.items" not in w["counters"] for w in sink.windows)

    def test_empty_flush_records_nothing(self):
        loop = EventLoop()
        sink = TelemetrySink(4.0)
        sink.attach(loop, MetricsRegistry())
        loop.run()
        sink.flush()
        assert sink.windows == []

    def test_resource_deltas(self):
        loop = EventLoop()
        registry = MetricsRegistry()
        channel = Resource(loop, name="ch0", kind="channel")
        loop.schedule(0.0, lambda: channel.acquire((0, 0.0), 6.0, lambda _s: None))
        loop.schedule(10.0, lambda: None)
        sink = TelemetrySink(5.0)
        sink.attach(loop, registry, channels=[channel])
        loop.run()
        sink.flush()
        busy = [w["resources"]["channel_busy_us"][0] for w in sink.windows]
        # booked at grant time: the full 6us lands in the first window
        assert busy == [6.0, 0.0]


class TestNeverPerturbs:
    def test_sink_never_extends_the_run(self):
        loop = EventLoop()
        registry = MetricsRegistry()
        drive(loop, registry, end_us=7.0, step_us=7.0)
        sink = TelemetrySink(3.0)
        sink.attach(loop, registry)
        loop.run()
        assert loop.now == 7.0  # not rounded up to a tick boundary


class TestJsonl:
    def test_header_and_windows_round_trip(self, tmp_path):
        loop = EventLoop()
        registry = MetricsRegistry()
        drive(loop, registry)
        sink = TelemetrySink(4.0)
        sink.attach(loop, registry)
        loop.run()
        sink.flush()
        path = tmp_path / "run.jsonl"
        written = sink.write_jsonl(path)
        lines = path.read_text().strip().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        assert header["schema_version"] == TELEMETRY_SCHEMA_VERSION
        assert header["windows"] == written == len(lines) - 1
        seqs = [json.loads(line)["seq"] for line in lines[1:]]
        assert seqs == list(range(len(seqs)))


class TestValidation:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            TelemetrySink(0.0)
