"""Trace recorder: ring buffer, sampling, exports, pairing."""

import json

import pytest

from repro.obs import (
    EVENT_NAMES,
    NULL_RECORDER,
    NullRecorder,
    TraceEvent,
    TraceRecorder,
    match_pairs,
)


class TestTraceRecorder:
    def test_emit_and_filter(self):
        rec = TraceRecorder()
        rec.emit(1.0, "channel_acquire", "ch0", dur_us=5.0)
        rec.emit(6.0, "channel_release", "ch0")
        assert len(rec) == 2
        assert [e.name for e in rec.events("channel_acquire")] == [
            "channel_acquire"
        ]
        assert rec.events()[0].dur_us == 5.0

    def test_ring_buffer_evicts_oldest(self):
        rec = TraceRecorder(capacity=3)
        for i in range(5):
            rec.emit(float(i), "e")
        assert len(rec) == 3
        assert rec.offered == 5
        assert rec.evicted == 2
        assert [e.ts_us for e in rec.events()] == [2.0, 3.0, 4.0]

    def test_wraparound_keeps_newest_window_in_order(self):
        # several full wraps of the ring: only the newest `capacity`
        # events survive, still in emission order
        rec = TraceRecorder(capacity=4)
        for i in range(11):
            rec.emit(float(i), "e", f"t{i % 2}")
        assert len(rec) == 4
        assert rec.offered == 11
        assert rec.evicted == 7
        assert [e.ts_us for e in rec.events()] == [7.0, 8.0, 9.0, 10.0]

    def test_wraparound_jsonl_export_matches_buffer(self, tmp_path):
        rec = TraceRecorder(capacity=3)
        for i in range(8):
            rec.emit(float(i), "e", args={"i": i})
        path = tmp_path / "wrapped.jsonl"
        assert rec.write_jsonl(path) == 3
        back = TraceRecorder.read_jsonl(path)
        assert [e.args["i"] for e in back] == [5, 6, 7]

    def test_wraparound_counters_account_for_every_offer(self):
        rec = TraceRecorder(capacity=2, sample_every=2)
        for i in range(10):
            rec.emit(float(i), "e")
        # every offered event is either kept, sampled out, or evicted
        assert rec.offered == len(rec) + rec.sampled_out + rec.evicted

    def test_sampling_keeps_one_in_n(self):
        rec = TraceRecorder(sample_every=3)
        for i in range(9):
            rec.emit(float(i), "e")
        assert rec.offered == 9
        assert len(rec) == 3
        assert rec.sampled_out == 6

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)
        with pytest.raises(ValueError):
            TraceRecorder(sample_every=0)

    def test_clear(self):
        rec = TraceRecorder()
        rec.emit(0.0, "e")
        rec.clear()
        assert len(rec) == 0

    def test_jsonl_round_trip(self, tmp_path):
        rec = TraceRecorder()
        rec.emit(1.5, "request_submit", "w0", "host", args={"op": "read"})
        rec.emit(2.0, "die_acquire", "die3", "resource", dur_us=40.0)
        path = tmp_path / "trace.jsonl"
        assert rec.write_jsonl(path) == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["args"] == {"op": "read"}
        back = TraceRecorder.read_jsonl(path)
        assert [e.name for e in back] == ["request_submit", "die_acquire"]
        assert back[1].dur_us == 40.0
        assert back[0].args == {"op": "read"}

    def test_to_jsonl_empty(self):
        assert TraceRecorder().to_jsonl() == ""

    def test_event_to_dict_schema(self):
        e = TraceEvent(3.0, "gc_start", "die0", "gc", dur_us=None, args=None)
        assert e.to_dict() == {
            "ts_us": 3.0,
            "name": "gc_start",
            "track": "die0",
            "cat": "gc",
            "dur_us": None,
            "args": None,
        }

    def test_canonical_vocabulary(self):
        assert "channel_acquire" in EVENT_NAMES
        assert "keeper_switch" in EVENT_NAMES


class TestNullRecorder:
    def test_all_noop(self, tmp_path):
        rec = NullRecorder()
        assert not rec.enabled
        rec.emit(0.0, "e")
        assert len(rec) == 0
        assert rec.events() == []
        assert rec.to_jsonl() == ""
        path = tmp_path / "empty.jsonl"
        assert rec.write_jsonl(path) == 0
        assert path.read_text() == ""

    def test_shared_instance(self):
        assert not NULL_RECORDER.enabled


class TestMatchPairs:
    def test_pairs_per_track(self):
        events = [
            TraceEvent(0.0, "channel_acquire", "ch0"),
            TraceEvent(1.0, "channel_acquire", "ch1"),
            TraceEvent(2.0, "channel_release", "ch0"),
            TraceEvent(3.0, "channel_release", "ch1"),
        ]
        pairs = match_pairs(events, "channel_acquire", "channel_release")
        assert len(pairs) == 2
        for start, end in pairs:
            assert start.track == end.track
            assert start.ts_us <= end.ts_us

    def test_unmatched_release_raises(self):
        events = [TraceEvent(1.0, "channel_release", "ch0")]
        with pytest.raises(ValueError):
            match_pairs(events, "channel_acquire", "channel_release")

    def test_fifo_pairing_on_same_track(self):
        events = [
            TraceEvent(0.0, "gc_start", "die0"),
            TraceEvent(1.0, "gc_start", "die0"),
            TraceEvent(2.0, "gc_end", "die0"),
            TraceEvent(3.0, "gc_end", "die0"),
        ]
        pairs = match_pairs(events, "gc_start", "gc_end")
        assert [(s.ts_us, e.ts_us) for s, e in pairs] == [(0.0, 2.0), (1.0, 3.0)]
