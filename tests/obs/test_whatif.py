"""Unit tests for the counterfactual what-if engine."""

import pytest

from repro.obs.whatif import (
    DEFAULT_COUNTERFACTUALS,
    WHATIF_SCHEMA_VERSION,
    Counterfactual,
    WhatIfReport,
    WhatIfRow,
    explain_decisions,
    run_whatif,
)
from repro.ssd.config import KNOBS, SSDConfig
from repro.ssd.faults import FaultConfig, FaultInjector
from repro.workloads.mixer import synthesize_mix
from repro.workloads.spec import WorkloadSpec


def small_inputs(total=120):
    cfg = SSDConfig(blocks_per_plane=8, pages_per_block=16)
    specs = [
        WorkloadSpec(
            name="writer", write_ratio=0.9, rate_rps=4000.0,
            mean_request_pages=2.0, sequential_fraction=0.3, skew=0.5,
            footprint_pages=400,
        ),
        WorkloadSpec(
            name="reader", write_ratio=0.1, rate_rps=3000.0,
            mean_request_pages=2.0, sequential_fraction=0.3, skew=0.5,
            footprint_pages=400,
        ),
    ]
    requests = synthesize_mix(specs, total_requests=total, seed=11).requests
    sets = {0: [0], 1: [1]}
    return requests, cfg, sets


class TestScaleKnob:
    def test_every_knob_field_exists(self):
        cfg = SSDConfig.small()
        for knob, fields in KNOBS.items():
            scaled = cfg.scale_knob(knob, 1.0)
            for field in fields:
                assert getattr(scaled, field) == getattr(cfg, field)

    def test_scaling_changes_the_field(self):
        cfg = SSDConfig.small()
        assert cfg.scale_knob("read_latency", 0.5).read_latency_us == (
            cfg.read_latency_us * 0.5
        )

    def test_gc_knob_scales_both_watermarks(self):
        cfg = SSDConfig.small()
        scaled = cfg.scale_knob("gc_threshold", 2.0)
        assert scaled.gc_threshold == pytest.approx(cfg.gc_threshold * 2)
        assert scaled.gc_restore == pytest.approx(cfg.gc_restore * 2)

    def test_unknown_knob_raises(self):
        with pytest.raises(KeyError):
            SSDConfig.small().scale_knob("warp_drive", 2.0)

    def test_invalid_scale_propagates_validation_error(self):
        with pytest.raises(ValueError):
            SSDConfig.small().scale_knob("gc_threshold", 100.0)

    def test_zero_command_overhead_is_legal(self):
        assert SSDConfig.small().scale_knob(
            "command_overhead", 0.0
        ).command_overhead_us == 0.0


class TestCounterfactual:
    def test_requires_exactly_one_mode(self):
        with pytest.raises(ValueError):
            Counterfactual("x", "both", knob="read_latency",
                           allocation="shared")
        with pytest.raises(ValueError):
            Counterfactual("x", "neither")

    def test_shared_allocation_gives_every_tenant_every_channel(self):
        cf = Counterfactual("s", "share", allocation="shared")
        cfg = SSDConfig.small(channels=4)
        _, sets = cf.apply(cfg, {0: [0], 1: [1]})
        assert sets == {0: [0, 1, 2, 3], 1: [0, 1, 2, 3]}

    def test_default_sweep_knobs_are_known(self):
        for cf in DEFAULT_COUNTERFACTUALS:
            if cf.knob is not None:
                assert cf.knob in KNOBS


class TestRunWhatif:
    def test_sweep_ranks_and_verifies(self):
        requests, cfg, sets = small_inputs()
        report = run_whatif(
            requests, cfg, sets,
            counterfactuals=[
                Counterfactual("tPROG_half", "program halved",
                               knob="write_latency", factor=0.5),
                Counterfactual("shared", "share channels",
                               allocation="shared"),
            ],
        )
        ranked = report.ranked()
        assert len(ranked) == 2
        assert ranked[0].speedup >= ranked[1].speedup
        assert ranked[0].verified  # top row re-simulated identically
        assert not ranked[1].verified

    def test_faster_knob_speeds_up_write_heavy_trace(self):
        requests, cfg, sets = small_inputs()
        report = run_whatif(
            requests, cfg, sets,
            counterfactuals=[
                Counterfactual("tPROG_half", "program halved",
                               knob="write_latency", factor=0.5),
            ],
        )
        assert report.best().speedup > 1.0

    def test_inapplicable_knob_reported_not_raised(self):
        requests, cfg, sets = small_inputs(total=40)
        report = run_whatif(
            requests, cfg, sets, verify=False,
            counterfactuals=[
                Counterfactual("gc_off_scale", "illegal watermarks",
                               knob="gc_threshold", factor=100.0),
            ],
        )
        assert report.rows[0].status == "inapplicable"
        assert report.ranked() == []
        assert report.best() is None

    def test_rejects_stateful_injector(self):
        requests, cfg, sets = small_inputs(total=40)
        injector = FaultInjector(FaultConfig(seed=3))
        with pytest.raises(TypeError):
            run_whatif(requests, cfg, sets, faults=injector)

    def test_fault_config_reruns_deterministically(self):
        requests, cfg, sets = small_inputs()
        faults = FaultConfig(seed=5, read_ber=0.02)
        report_a = run_whatif(
            requests, cfg, sets, faults=faults,
            counterfactuals=[
                Counterfactual("tR_half", "read halved",
                               knob="read_latency", factor=0.5),
            ],
        )
        report_b = run_whatif(
            requests, cfg, sets, faults=faults,
            counterfactuals=[
                Counterfactual("tR_half", "read halved",
                               knob="read_latency", factor=0.5),
            ],
        )
        assert report_a.to_dict() == report_b.to_dict()

    def test_requests_left_unstamped(self):
        requests, cfg, sets = small_inputs(total=40)
        run_whatif(
            requests, cfg, sets, verify=False,
            counterfactuals=[
                Counterfactual("tR_half", "read halved",
                               knob="read_latency", factor=0.5),
            ],
        )
        assert all(req.complete_us == -1.0 for req in requests)

    def test_baseline_passthrough_skips_rerun(self):
        from repro.ssd.simulator import simulate

        requests, cfg, sets = small_inputs(total=40)
        baseline = simulate(requests, cfg, sets)
        report = run_whatif(
            requests, cfg, sets, baseline=baseline, verify=False,
            counterfactuals=[],
        )
        assert report.baseline_total_latency_us == baseline.total_latency_us
        assert report.rows == []

    def test_to_dict_schema(self):
        requests, cfg, sets = small_inputs(total=40)
        doc = run_whatif(
            requests, cfg, sets, verify=False,
            counterfactuals=[
                Counterfactual("tR_half", "read halved",
                               knob="read_latency", factor=0.5),
            ],
        ).to_dict()
        assert doc["schema_version"] == WHATIF_SCHEMA_VERSION
        assert doc["baseline"]["total_latency_us"] > 0
        assert doc["counterfactuals"][0]["name"] == "tR_half"
        assert "speedup" in doc["counterfactuals"][0]


class FakeDecision:
    def __init__(self, predicted_us, realised_us, fallback=None):
        self.time_us = 1000.0
        self.strategy = "RR4"
        self.window_requests = 50
        self.predicted_mean_us = predicted_us
        self.realised_mean_us = realised_us
        self.fallback_reason = fallback


class FakeBreakdown:
    def phase_fractions(self):
        return {"die_us": 0.75, "gc_stall_us": 0.25, "bus_us": 0.0}


class TestExplainDecisions:
    def test_gap_split_by_phase_fractions(self):
        out = explain_decisions([FakeDecision(100.0, 180.0)], FakeBreakdown())
        assert out[0]["gap_us"] == pytest.approx(80.0)
        assert out[0]["gap_by_phase_us"]["die_us"] == pytest.approx(60.0)
        assert out[0]["gap_by_phase_us"]["gc_stall_us"] == pytest.approx(20.0)
        assert "bus_us" not in out[0]["gap_by_phase_us"]

    def test_missing_prediction_yields_none_gap(self):
        out = explain_decisions(
            [FakeDecision(None, 180.0, fallback="unhealthy")], FakeBreakdown()
        )
        assert out[0]["gap_us"] is None
        assert out[0]["fallback_reason"] == "unhealthy"
        assert "gap_by_phase_us" not in out[0]

    def test_no_breakdown_still_reports_gap(self):
        out = explain_decisions([FakeDecision(100.0, 120.0)], None)
        assert out[0]["gap_us"] == pytest.approx(20.0)
        assert "gap_by_phase_us" not in out[0]

    def test_empty_decisions(self):
        assert explain_decisions([], FakeBreakdown()) == []


class TestReportFormat:
    def test_format_mentions_verified_and_inapplicable(self):
        report = WhatIfReport(
            baseline_total_latency_us=2e6,
            baseline_makespan_us=1e6,
            baseline_mean_read_us=100.0,
            baseline_mean_write_us=300.0,
            requests=10,
            rows=[
                WhatIfRow("a", "desc a", "ok", total_latency_us=1e6,
                          makespan_us=5e5, speedup=2.0,
                          makespan_speedup=2.0, verified=True),
                WhatIfRow("b", "desc b", "inapplicable", note="nope"),
            ],
        )
        text = report.format()
        assert "*verified*" in text
        assert "inapplicable: nope" in text
