"""DRAM write-back buffer: unit behaviour and simulator integration."""

from hypothesis import given
from hypothesis import strategies as st
import pytest

from repro.ssd import BufferConfig, IORequest, OpType, ServiceTimes, SSDSimulator, WriteBuffer


def cfg(capacity=4, dram=2.0, read_allocate=True):
    return BufferConfig(
        capacity_pages=capacity, dram_latency_us=dram, read_allocate=read_allocate
    )


class TestBufferUnit:
    def test_write_then_read_hits(self):
        buf = WriteBuffer(cfg())
        assert not buf.write(10).hit
        assert buf.read(10).hit
        assert buf.is_dirty(10)
        assert buf.stats.read_hits == 1

    def test_write_coalescing(self):
        buf = WriteBuffer(cfg())
        buf.write(10)
        result = buf.write(10)
        assert result.hit
        assert buf.stats.write_hits == 1
        assert len(buf) == 1

    def test_lru_eviction_order(self):
        buf = WriteBuffer(cfg(capacity=2))
        buf.write(1)
        buf.write(2)
        buf.read(1)          # touch 1: now 2 is LRU
        result = buf.write(3)
        assert result.flash_writes == (2,)
        assert 1 in buf and 3 in buf and 2 not in buf

    def test_clean_evictions_do_not_program_flash(self):
        buf = WriteBuffer(cfg(capacity=1))
        buf.read(7)          # read-allocate, clean
        result = buf.write(8)
        assert result.flash_writes == ()
        assert buf.stats.clean_evictions == 1

    def test_read_allocate_disabled(self):
        buf = WriteBuffer(cfg(read_allocate=False))
        buf.read(5)
        assert 5 not in buf

    def test_flush_returns_only_dirty(self):
        buf = WriteBuffer(cfg())
        buf.write(1)
        buf.read(2)
        dirty = buf.flush()
        assert dirty == (1,)
        assert len(buf) == 0

    def test_stats_rates(self):
        buf = WriteBuffer(cfg())
        buf.write(1)
        buf.write(1)
        buf.read(1)
        buf.read(9)
        assert buf.stats.write_absorb_rate == pytest.approx(0.5)
        assert buf.stats.read_hit_rate == pytest.approx(0.5)

    def test_empty_rates_are_zero(self):
        stats = WriteBuffer(cfg()).stats
        assert stats.read_hit_rate == 0.0
        assert stats.write_absorb_rate == 0.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BufferConfig(capacity_pages=0)
        with pytest.raises(ValueError):
            BufferConfig(dram_latency_us=-1.0)

    @given(ops=st.lists(st.tuples(st.booleans(), st.integers(0, 9)), max_size=80))
    def test_capacity_never_exceeded(self, ops):
        buf = WriteBuffer(cfg(capacity=3))
        for is_write, lpn in ops:
            if is_write:
                buf.write(lpn)
            else:
                buf.read(lpn)
            assert len(buf) <= 3


class TestSimulatorIntegration:
    def _write(self, t, lpn):
        return IORequest(arrival_us=t, workload_id=0, op=OpType.WRITE, lpn=lpn)

    def _read(self, t, lpn):
        return IORequest(arrival_us=t, workload_id=0, op=OpType.READ, lpn=lpn)

    def test_buffered_write_completes_at_dram_latency(self, small_config):
        sim = SSDSimulator(
            small_config, {0: list(range(8))}, buffer=cfg(capacity=64, dram=2.0)
        )
        result = sim.run([self._write(0.0, 1)])
        assert result.write.mean_us == pytest.approx(2.0)

    def test_read_after_buffered_write_is_dram_hit(self, small_config):
        sim = SSDSimulator(
            small_config, {0: list(range(8))}, buffer=cfg(capacity=64, dram=2.0)
        )
        result = sim.run([self._write(0.0, 1), self._read(100.0, 1)])
        assert result.read.mean_us == pytest.approx(2.0)
        assert result.extras["buffer_read_hit_rate"] == 1.0

    def test_evictions_program_flash_in_background(self, small_config):
        t = ServiceTimes.from_config(small_config)
        sim = SSDSimulator(
            small_config, {0: list(range(8))}, buffer=cfg(capacity=2, dram=2.0)
        )
        reqs = [self._write(float(i) * 1000, i) for i in range(6)]
        result = sim.run(reqs)
        # Host writes all complete at DRAM speed...
        assert result.write.max_us == pytest.approx(2.0)
        # ...but evicted pages really were programmed.
        assert result.extras["buffer_dirty_evictions"] == 4
        assert sim.controller.mapped_pages() == 4
        assert result.makespan_us > t.write_service_us

    def test_cold_read_miss_goes_to_flash(self, small_config):
        t = ServiceTimes.from_config(small_config)
        sim = SSDSimulator(
            small_config, {0: list(range(8))}, buffer=cfg(capacity=8)
        )
        result = sim.run([self._read(0.0, 123)])
        assert result.read.mean_us == pytest.approx(t.read_service_us)

    def test_buffer_improves_hot_write_latency(self, small_config):
        reqs = lambda: [self._write(float(i) * 30, i % 8) for i in range(100)]
        plain = SSDSimulator(small_config, {0: list(range(8))}).run(reqs())
        buffered = SSDSimulator(
            small_config, {0: list(range(8))}, buffer=cfg(capacity=32)
        ).run(reqs())
        assert buffered.write.mean_us < plain.write.mean_us / 10
