"""SSDConfig: Table-I values, validation, derived geometry."""

import pytest

from repro.ssd import GiB, KiB, SSDConfig


class TestPaperConfiguration:
    """The defaults must match Table I of the paper exactly."""

    def test_table_one_values(self, paper_config):
        assert paper_config.page_size == 16 * KiB
        assert paper_config.pages_per_block == 128
        assert paper_config.blocks_per_plane == 4096
        assert paper_config.planes_per_chip_equiv() if False else True
        assert paper_config.planes_per_die == 4
        assert paper_config.chips_per_channel == 2
        assert paper_config.channels == 8
        assert paper_config.read_latency_us == 20.0
        assert paper_config.write_latency_us == 200.0
        assert paper_config.erase_latency_us == 1500.0

    def test_physical_capacity_is_512_gib(self, paper_config):
        assert paper_config.physical_capacity_bytes == 512 * GiB

    def test_total_counts(self, paper_config):
        assert paper_config.chips == 16
        assert paper_config.dies == 16
        assert paper_config.planes == 64
        assert paper_config.total_pages == 512 * GiB // (16 * KiB)

    def test_paper_constructor_equals_defaults(self):
        assert SSDConfig.paper() == SSDConfig()


class TestDerivedQuantities:
    def test_page_transfer_time(self, paper_config):
        # 16 KiB over 400 MB/s -> 40.96 us
        assert paper_config.page_transfer_us == pytest.approx(16384 / 400)

    def test_logical_pages_respect_overprovisioning(self, paper_config):
        assert paper_config.logical_pages < paper_config.total_pages
        expected = int(paper_config.total_pages * (1 - paper_config.overprovisioning))
        assert paper_config.logical_pages == expected

    def test_pages_hierarchy_consistency(self, small_config):
        c = small_config
        assert c.pages_per_plane == c.blocks_per_plane * c.pages_per_block
        assert c.pages_per_chip == c.pages_per_plane * c.planes_per_die * c.dies_per_chip
        assert c.pages_per_channel == c.pages_per_chip * c.chips_per_channel
        assert c.total_pages == c.pages_per_channel * c.channels

    def test_small_keeps_topology(self):
        c = SSDConfig.small()
        assert c.channels == 8
        assert c.chips_per_channel == 2
        assert c.blocks_per_plane < SSDConfig.paper().blocks_per_plane

    def test_replace_produces_updated_copy(self, paper_config):
        other = paper_config.replace(channels=4)
        assert other.channels == 4
        assert paper_config.channels == 8

    def test_describe_mentions_key_numbers(self, paper_config):
        text = paper_config.describe()
        assert "8 channels" in text
        assert "512.0 GiB" in text


class TestValidation:
    @pytest.mark.parametrize(
        "field",
        [
            "channels",
            "chips_per_channel",
            "dies_per_chip",
            "planes_per_die",
            "blocks_per_plane",
            "pages_per_block",
            "page_size",
        ],
    )
    def test_rejects_nonpositive_structure(self, field):
        with pytest.raises(ValueError):
            SSDConfig(**{field: 0})

    @pytest.mark.parametrize(
        "field",
        ["read_latency_us", "write_latency_us", "erase_latency_us", "channel_bandwidth_mbps"],
    )
    def test_rejects_nonpositive_timing(self, field):
        with pytest.raises(ValueError):
            SSDConfig(**{field: 0.0})

    def test_rejects_negative_command_overhead(self):
        with pytest.raises(ValueError):
            SSDConfig(command_overhead_us=-1.0)

    def test_rejects_bad_gc_thresholds(self):
        with pytest.raises(ValueError):
            SSDConfig(gc_threshold=0.05, gc_restore=0.04)
        with pytest.raises(ValueError):
            SSDConfig(gc_threshold=0.0)

    def test_rejects_bad_overprovisioning(self):
        with pytest.raises(ValueError):
            SSDConfig(overprovisioning=1.0)
        with pytest.raises(ValueError):
            SSDConfig(overprovisioning=-0.1)

    def test_rejects_float_structure(self):
        with pytest.raises(ValueError):
            SSDConfig(channels=8.0)  # type: ignore[arg-type]
