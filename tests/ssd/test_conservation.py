"""Work-conservation invariants of the event-driven engine.

Every page access charges exact, known durations to its die and channel.
Whatever the contention, the *total* busy time each resource class
accumulates must equal the per-op service times summed over the trace —
queueing moves work in time, never creates or destroys it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.ssd import IORequest, OpType, ServiceTimes, SSDConfig, SSDSimulator


def random_trace(seed, n):
    rng = np.random.default_rng(seed)
    return [
        IORequest(
            arrival_us=float(rng.uniform(0, 5_000)),
            workload_id=int(rng.integers(0, 2)),
            op=OpType(int(rng.integers(0, 2))),
            lpn=int(rng.integers(0, 4096)),
            length=int(rng.integers(1, 4)),
        )
        for _ in range(n)
    ]


class TestWorkConservation:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15)
    def test_busy_time_equals_service_demand(self, seed):
        config = SSDConfig.small()
        t = ServiceTimes.from_config(config)
        sim = SSDSimulator(config, {0: list(range(8)), 1: list(range(8))})
        result = sim.run(random_trace(seed, 120))
        assert result.gc_collections == 0  # no GC in this regime

        # Recompute per-op page counts from an identical trace realisation.
        trace = random_trace(seed, 120)
        read_pages = sum(r.length for r in trace if r.is_read)
        write_pages = sum(r.length for r in trace if not r.is_read)
        assert result.read.count + result.write.count == 120
        assert sim.subrequests_done == read_pages + write_pages

        expected_die = read_pages * t.read_die_us + write_pages * t.write_die_us
        expected_bus = read_pages * t.read_bus_us + write_pages * t.write_bus_us
        actual_die = sum(d.busy_time_us for d in sim.dies)
        actual_bus = sum(c.busy_time_us for c in sim.channels)
        assert actual_die == pytest.approx(expected_die, rel=1e-9)
        assert actual_bus == pytest.approx(expected_bus, rel=1e-9)

    def test_latency_never_below_service_time(self):
        config = SSDConfig.small()
        t = ServiceTimes.from_config(config)
        sim = SSDSimulator(config, {0: list(range(8)), 1: list(range(8))})
        result = sim.run(random_trace(7, 200))
        assert result.read.min_us >= t.read_service_us - 1e-9
        assert result.write.min_us >= t.write_service_us - 1e-9

    def test_utilization_report_consistent(self):
        config = SSDConfig.small()
        sim = SSDSimulator(config, {0: list(range(8)), 1: list(range(8))})
        sim.run(random_trace(3, 150))
        report = sim.utilization_report()
        assert report["makespan_us"] > 0
        assert len(report["channels"]) == 8
        assert len(report["dies"]) == 16
        assert all(0.0 <= u <= 1.0 for u in report["channels"] + report["dies"])
        # Die time dominates (tPROG >> transfer), so mean die utilisation
        # should exceed mean channel utilisation for a mixed trace.
        assert np.mean(report["dies"]) > 0

    def test_makespan_bounds_total_work(self):
        """Makespan x resource count >= total busy time (no overbooking)."""
        config = SSDConfig.small()
        sim = SSDSimulator(config, {0: list(range(8)), 1: list(range(8))})
        sim.run(random_trace(11, 300))
        elapsed = sim.loop.now
        assert sum(c.busy_time_us for c in sim.channels) <= elapsed * config.channels + 1e-6
        assert sum(d.busy_time_us for d in sim.dies) <= elapsed * config.dies + 1e-6
