"""FTL controller: placement policy, pre-seeding, reallocation."""

import pytest

from repro.ssd import FTLController, SSDConfig
from repro.ssd.ftl.page_alloc import PageAllocMode


@pytest.fixture
def controller(small_config):
    return FTLController(
        small_config,
        channel_sets={0: [0, 1, 2, 3], 1: [4, 5, 6, 7]},
        page_modes={0: PageAllocMode.DYNAMIC, 1: PageAllocMode.STATIC},
    )


class TestConstruction:
    def test_rejects_empty_channel_sets(self, small_config):
        with pytest.raises(ValueError):
            FTLController(small_config, channel_sets={})
        with pytest.raises(ValueError):
            FTLController(small_config, channel_sets={0: []})

    def test_rejects_out_of_range_channel(self, small_config):
        with pytest.raises(ValueError):
            FTLController(small_config, channel_sets={0: [99]})

    def test_tenant_space_divides_logical_pages(self, small_config):
        ctrl = FTLController(small_config, channel_sets={0: [0], 1: [1]})
        assert ctrl.tenant_lpn_space == small_config.logical_pages // 2

    def test_default_mode_is_static(self, small_config):
        ctrl = FTLController(small_config, channel_sets={0: [0]})
        assert ctrl.page_modes[0] is PageAllocMode.STATIC


class TestWritePlacement:
    def test_write_stays_in_tenant_channels(self, controller):
        geo = controller.geometry
        for lpn in range(100):
            ppn, _ = controller.place_write(0, lpn)
            assert geo.channel_of(ppn) in (0, 1, 2, 3)
            ppn, _ = controller.place_write(1, lpn)
            assert geo.channel_of(ppn) in (4, 5, 6, 7)

    def test_unknown_workload_rejected(self, controller):
        with pytest.raises(KeyError):
            controller.place_write(9, 0)

    def test_lpn_over_tenant_space_rejected(self, controller):
        with pytest.raises(ValueError):
            controller.place_write(0, controller.tenant_lpn_space)

    def test_overwrite_remaps(self, controller):
        first, _ = controller.place_write(0, 5)
        second, _ = controller.place_write(0, 5)
        assert first != second
        glpn = controller.global_lpn(0, 5)
        assert controller.state.mapping.lookup(glpn) == second


class TestReadResolution:
    def test_read_after_write_finds_data(self, controller):
        ppn, _ = controller.place_write(0, 7)
        assert controller.resolve_read(0, 7) == ppn
        assert controller.seeded_pages == 0

    def test_cold_read_preseeds_statically(self, controller):
        geo = controller.geometry
        ppn = controller.resolve_read(1, 0)
        assert controller.seeded_pages == 1
        assert geo.channel_of(ppn) in (4, 5, 6, 7)
        # Second read hits the same page without another seed.
        assert controller.resolve_read(1, 0) == ppn
        assert controller.seeded_pages == 1

    def test_tenants_do_not_alias(self, controller):
        p0 = controller.resolve_read(0, 42)
        p1 = controller.resolve_read(1, 42)
        assert p0 != p1

    def test_sequential_cold_reads_stripe_channels(self, controller):
        geo = controller.geometry
        channels = [geo.channel_of(controller.resolve_read(1, lpn)) for lpn in range(4)]
        assert len(set(channels)) == 4


class TestReallocation:
    def test_new_writes_follow_new_channels(self, controller):
        controller.place_write(0, 1)
        controller.reallocate({0: [6, 7], 1: [0, 1]})
        geo = controller.geometry
        for lpn in range(8):
            ppn, _ = controller.place_write(0, 100 + lpn)
            assert geo.channel_of(ppn) in (6, 7)

    def test_old_data_stays_readable(self, controller):
        before = controller.resolve_read(0, 3)
        controller.reallocate({0: [6, 7], 1: [0, 1]})
        assert controller.resolve_read(0, 3) == before

    def test_rejects_workload_set_change(self, controller):
        with pytest.raises(ValueError):
            controller.reallocate({0: [0]})
        with pytest.raises(ValueError):
            controller.reallocate({0: [0], 1: [1], 2: [2]})

    def test_rejects_bad_channels(self, controller):
        with pytest.raises(ValueError):
            controller.reallocate({0: [0], 1: [99]})
        with pytest.raises(ValueError):
            controller.reallocate({0: [], 1: [1]})

    def test_page_modes_update(self, controller):
        controller.reallocate(
            {0: [0], 1: [1]},
            page_modes={0: PageAllocMode.STATIC, 1: PageAllocMode.DYNAMIC},
        )
        assert controller.page_modes[0] is PageAllocMode.STATIC
        assert controller.page_modes[1] is PageAllocMode.DYNAMIC


class TestCapacityPressure:
    def test_fallback_finds_space_in_other_planes(self):
        config = SSDConfig(
            channels=2,
            chips_per_channel=1,
            dies_per_chip=1,
            planes_per_die=2,
            blocks_per_plane=4,
            pages_per_block=4,
            overprovisioning=0.0,
        )
        ctrl = FTLController(config, channel_sets={0: [0, 1]}, tenant_lpn_space=64)
        # Write unique LPNs up to most of the device; the static stripe plus
        # fallback must never raise until space is truly gone.
        written = 0
        try:
            for lpn in range(64):
                ctrl.place_write(0, lpn)
                written += 1
        except RuntimeError:
            pass
        assert written >= 48  # nearly the whole device gets used

    def test_describe_mentions_tenants(self, controller):
        text = controller.describe()
        assert "wid 0" in text and "wid 1" in text
