"""DES kernel: event ordering, resource queueing disciplines."""

import pytest

from repro.ssd.engine import PRIO_GC, PRIO_READ, PRIO_WRITE, EventLoop, Resource


class TestEventLoop:
    def test_runs_in_time_order(self):
        loop = EventLoop()
        seen = []
        loop.schedule(5.0, lambda: seen.append("b"))
        loop.schedule(1.0, lambda: seen.append("a"))
        loop.schedule(9.0, lambda: seen.append("c"))
        loop.run()
        assert seen == ["a", "b", "c"]
        assert loop.now == 9.0

    def test_fifo_within_same_timestamp(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda: seen.append(1))
        loop.schedule(1.0, lambda: seen.append(2))
        loop.run()
        assert seen == [1, 2]

    def test_rejects_past_events(self):
        loop = EventLoop()
        loop.schedule(5.0, lambda: loop.schedule(1.0, lambda: None))
        with pytest.raises(ValueError):
            loop.run()

    def test_clamps_float_rounding_residue(self):
        """``when`` a hair below ``now`` (summed-duration round-off) clamps.

        Chained ``start + duration`` arithmetic can produce a completion
        time that is one ULP below the loop's current time; that must not
        blow up a multi-hour simulation.
        """
        loop = EventLoop()
        seen = []

        def at_now_minus_epsilon():
            loop.schedule(loop.now - 5e-10, lambda: seen.append(loop.now))

        loop.schedule(1.0, at_now_minus_epsilon)
        loop.run()
        assert seen == [1.0]  # clamped to now, not scheduled in the past

    def test_clamp_tolerance_is_tight(self):
        loop = EventLoop()
        loop.schedule(
            1.0, lambda: loop.schedule(loop.now - 1e-6, lambda: None)
        )
        with pytest.raises(ValueError, match="past"):
            loop.run()

    def test_events_scheduled_during_run_are_processed(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda: loop.schedule(2.0, lambda: seen.append("late")))
        loop.run()
        assert seen == ["late"]

    def test_run_until_stops_early(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda: seen.append(1))
        loop.schedule(10.0, lambda: seen.append(2))
        loop.run(until=5.0)
        assert seen == [1]
        assert bool(loop)  # pending events remain

    def test_counts_events(self):
        loop = EventLoop()
        for t in range(5):
            loop.schedule(float(t), lambda: None)
        loop.run()
        assert loop.events_processed == 5


class TestResource:
    def test_immediate_grant_when_idle(self):
        loop = EventLoop()
        res = Resource(loop)
        starts = []
        loop.schedule(0.0, lambda: res.acquire((0, 0), 10.0, starts.append))
        loop.run()
        assert starts == [0.0]
        assert res.free_at == 10.0

    def test_serialises_contending_jobs(self):
        loop = EventLoop()
        res = Resource(loop)
        starts = {}

        def submit() -> None:
            res.acquire((PRIO_WRITE, 0), 10.0, lambda s: starts.__setitem__("a", s))
            res.acquire((PRIO_WRITE, 1), 5.0, lambda s: starts.__setitem__("b", s))

        loop.schedule(0.0, submit)
        loop.run()
        assert starts == {"a": 0.0, "b": 10.0}
        assert res.busy_time_us == 15.0

    def test_priority_order_among_waiters(self):
        loop = EventLoop()
        res = Resource(loop)
        order = []

        def submit() -> None:
            res.acquire((PRIO_WRITE, 0), 10.0, lambda s: order.append("holder"))
            res.acquire((PRIO_WRITE, 1), 1.0, lambda s: order.append("write"))
            res.acquire((PRIO_GC, 2), 1.0, lambda s: order.append("gc"))
            res.acquire((PRIO_READ, 3), 1.0, lambda s: order.append("read"))

        loop.schedule(0.0, submit)
        loop.run()
        # Holder is never preempted; waiters drain by priority class.
        assert order == ["holder", "read", "gc", "write"]

    def test_fifo_within_priority_class(self):
        loop = EventLoop()
        res = Resource(loop)
        order = []

        def submit() -> None:
            res.acquire((PRIO_WRITE, loop.now), 10.0, lambda s: order.append(0))
            for i in (1, 2, 3):
                res.acquire((PRIO_WRITE, loop.now), 1.0, lambda s, i=i: order.append(i))

        loop.schedule(0.0, submit)
        loop.run()
        assert order == [0, 1, 2, 3]

    def test_wait_time_accounting(self):
        loop = EventLoop()
        res = Resource(loop)
        loop.schedule(0.0, lambda: res.acquire((0, 0), 10.0, lambda s: None))
        loop.schedule(0.0, lambda: res.acquire((0, 1), 1.0, lambda s: None))
        loop.run()
        assert res.wait_time_us == pytest.approx(10.0)
        assert res.grants == 2

    def test_rejects_negative_duration(self):
        loop = EventLoop()
        res = Resource(loop)
        with pytest.raises(ValueError):
            res.acquire((0, 0), -1.0, lambda s: None)

    def test_zero_duration_jobs_pass_through(self):
        loop = EventLoop()
        res = Resource(loop)
        starts = []
        loop.schedule(0.0, lambda: res.acquire((0, 0), 0.0, starts.append))
        loop.schedule(0.0, lambda: res.acquire((0, 1), 0.0, starts.append))
        loop.run()
        assert starts == [0.0, 0.0]

    def test_utilization(self):
        loop = EventLoop()
        res = Resource(loop)
        loop.schedule(0.0, lambda: res.acquire((0, 0), 25.0, lambda s: None))
        loop.run()
        assert res.utilization(100.0) == pytest.approx(0.25)
        assert res.utilization(0.0) == 0.0
        assert res.utilization(10.0) == 1.0  # clamped

    def test_queue_depth(self):
        loop = EventLoop()
        res = Resource(loop)
        depths = []

        def submit() -> None:
            res.acquire((0, 0), 10.0, lambda s: None)
            res.acquire((0, 1), 1.0, lambda s: None)
            res.acquire((0, 2), 1.0, lambda s: None)
            depths.append(res.queue_depth)

        loop.schedule(0.0, submit)
        loop.run()
        assert depths == [2]
        assert res.queue_depth == 0


class TestWeakEvents:
    def test_weak_events_fire_while_strong_work_pending(self):
        loop = EventLoop()
        seen = []
        loop.schedule_weak(1.0, lambda: seen.append("weak"))
        loop.schedule(2.0, lambda: seen.append("strong"))
        loop.run()
        assert seen == ["weak", "strong"]

    def test_trailing_weak_events_are_dropped(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda: seen.append("strong"))
        loop.schedule_weak(5.0, lambda: seen.append("weak"))
        loop.run()
        assert seen == ["strong"]
        assert loop.now == 1.0  # weak tail never advanced the clock
        assert not loop

    def test_weak_only_heap_runs_nothing(self):
        loop = EventLoop()
        seen = []
        loop.schedule_weak(1.0, lambda: seen.append("weak"))
        loop.run()
        assert seen == []
        assert loop.now == 0.0

    def test_bounded_run_dispatches_weak_events(self):
        # run(until=...) is an explicit horizon: weak events inside it
        # fire like any other (samplers must tick across run segments)
        loop = EventLoop()
        seen = []
        loop.schedule_weak(1.0, lambda: seen.append("weak"))
        loop.run(until=2.0)
        assert seen == ["weak"]
        assert loop.now == 1.0

    def test_pending_strong_excludes_weak(self):
        loop = EventLoop()
        loop.schedule_weak(1.0, lambda: None)
        loop.schedule(2.0, lambda: None)
        assert len(loop._heap) == 2
        assert loop.pending_strong == 1
        loop.run()
        assert loop.pending_strong == 0

    def test_weak_past_time_rejected_like_strong(self):
        loop = EventLoop()
        loop.schedule(10.0, lambda: None)
        loop.run()
        with pytest.raises(ValueError):
            loop.schedule_weak(5.0, lambda: None)


class TestEvery:
    def test_metronome_ticks_while_strong_work_remains(self):
        loop = EventLoop()
        ticks = []
        loop.schedule(10.0, lambda: None)
        loop.every(3.0, lambda: ticks.append(loop.now))
        loop.run()
        assert ticks == [3.0, 6.0, 9.0]
        assert loop.now == 10.0

    def test_metronome_never_outlives_the_last_strong_event(self):
        loop = EventLoop()
        ticks = []
        loop.schedule(2.0, lambda: None)
        loop.every(5.0, lambda: ticks.append(loop.now))
        loop.run()
        assert ticks == []  # first tick at 5.0 would be past the run
        assert loop.now == 2.0

    def test_two_metronomes_cannot_keep_each_other_alive(self):
        loop = EventLoop()
        a, b = [], []
        loop.schedule(7.0, lambda: None)
        loop.every(2.0, lambda: a.append(loop.now))
        loop.every(3.0, lambda: b.append(loop.now))
        loop.run()
        assert loop.now == 7.0
        assert a == [2.0, 4.0, 6.0]
        assert b == [3.0, 6.0]

    def test_rejects_non_positive_interval(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.every(0.0, lambda: None)


class TestComposedLoop:
    def test_rejects_empty_member_list(self):
        from repro.ssd.engine import ComposedLoop

        with pytest.raises(ValueError):
            ComposedLoop([])

    def test_interleaves_members_in_global_time_order(self):
        from repro.ssd.engine import ComposedLoop

        a, b = EventLoop(), EventLoop()
        seen = []
        a.schedule(1.0, lambda: seen.append("a1"))
        a.schedule(5.0, lambda: seen.append("a5"))
        b.schedule(2.0, lambda: seen.append("b2"))
        b.schedule(4.0, lambda: seen.append("b4"))
        composed = ComposedLoop([a, b])
        composed.run()
        assert seen == ["a1", "b2", "b4", "a5"]
        assert composed.now == 5.0

    def test_timestamp_ties_dispatch_lowest_member_first(self):
        from repro.ssd.engine import ComposedLoop

        a, b = EventLoop(), EventLoop()
        seen = []
        b.schedule(3.0, lambda: seen.append("b"))
        a.schedule(3.0, lambda: seen.append("a"))
        ComposedLoop([a, b]).run()
        assert seen == ["a", "b"]

    def test_member_clocks_stay_per_member(self):
        """A drained member's clock freezes at its own makespan."""
        from repro.ssd.engine import ComposedLoop

        a, b = EventLoop(), EventLoop()
        a.schedule(2.0, lambda: None)
        b.schedule(9.0, lambda: None)
        composed = ComposedLoop([a, b])
        composed.run()
        assert a.now == 2.0
        assert b.now == 9.0
        assert composed.now == 9.0

    def test_weak_only_members_are_dormant_not_drained(self):
        """A member holding only weak events is skipped, exactly like a
        solo loop dropping trailing weak work."""
        from repro.ssd.engine import ComposedLoop

        a, b = EventLoop(), EventLoop()
        ticks = []
        a.schedule(4.0, lambda: None)
        b.every(1.0, lambda: ticks.append(b.now))
        composed = ComposedLoop([a, b])
        composed.run()
        assert ticks == []  # b never had strong work; its metronome drops
        assert not composed

    def test_weak_events_dispatch_while_member_has_strong_work(self):
        from repro.ssd.engine import ComposedLoop

        a = EventLoop()
        ticks = []
        a.schedule(10.0, lambda: None)
        a.every(4.0, lambda: ticks.append(a.now))
        ComposedLoop([a]).run()
        assert ticks == [4.0, 8.0]

    def test_cross_member_scheduling_mid_run(self):
        """A control member can inject strong work into another member,
        reviving its weak metronome (the migration-forwarding pattern)."""
        from repro.ssd.engine import ComposedLoop

        control, dev = EventLoop(), EventLoop()
        ticks, seen = [], []
        dev.every(2.0, lambda: ticks.append(dev.now))
        control.schedule(
            1.0, lambda: dev.schedule(5.0, lambda: seen.append(dev.now))
        )
        ComposedLoop([control, dev]).run()
        assert seen == [5.0]
        assert ticks == [2.0, 4.0]  # metronome lives while strong work pends

    def test_events_processed_counts_all_members(self):
        from repro.ssd.engine import ComposedLoop

        a, b = EventLoop(), EventLoop()
        a.schedule(1.0, lambda: None)
        b.schedule(2.0, lambda: None)
        b.schedule(3.0, lambda: None)
        composed = ComposedLoop([a, b])
        composed.run()
        assert composed.events_processed == 3
