"""Fast timeline model: exactness on simple cases, DES agreement."""

import pytest

from repro.ssd import IORequest, OpType, ServiceTimes, fast_simulate, simulate


def shared_sets(n=1, channels=8):
    return {w: list(range(channels)) for w in range(n)}


def read(t, lpn, wid=0, length=1):
    return IORequest(arrival_us=t, workload_id=wid, op=OpType.READ, lpn=lpn, length=length)


def write(t, lpn, wid=0, length=1):
    return IORequest(arrival_us=t, workload_id=wid, op=OpType.WRITE, lpn=lpn, length=length)


class TestExactCases:
    def test_single_read(self, small_config):
        t = ServiceTimes.from_config(small_config)
        result = fast_simulate([read(0.0, 0)], small_config, shared_sets())
        assert result.read.mean_us == pytest.approx(t.read_service_us)

    def test_single_write(self, small_config):
        t = ServiceTimes.from_config(small_config)
        result = fast_simulate([write(0.0, 0)], small_config, shared_sets())
        assert result.write.mean_us == pytest.approx(t.write_service_us)

    def test_same_die_serialisation(self, small_config):
        t = ServiceTimes.from_config(small_config)
        result = fast_simulate([read(0.0, 0), read(0.0, 0)], small_config, shared_sets())
        assert result.read.max_us > t.read_service_us

    def test_empty_trace(self, small_config):
        result = fast_simulate([], small_config, shared_sets())
        assert result.requests == 0
        assert result.total_latency_us == 0.0

    def test_unknown_workload_rejected(self, small_config):
        with pytest.raises(KeyError):
            fast_simulate([read(0.0, 0, wid=5)], small_config, shared_sets(1))


class TestDESAgreement:
    """The fast model must track the exact engine closely on light loads
    and preserve ordering on heavy loads (its job is ranking strategies)."""

    def _trace(self, rng, n=400, wids=2):
        return [
            IORequest(
                arrival_us=float(rng.uniform(0, 20_000)),
                workload_id=int(rng.integers(0, wids)),
                op=OpType(int(rng.integers(0, 2))),
                lpn=int(rng.integers(0, 2048)),
                length=int(rng.integers(1, 4)),
            )
            for _ in range(n)
        ]

    def test_total_latency_exact_on_light_load(self, small_config, rng):
        # Light load: queueing reorders nothing, the models should coincide.
        reqs = [
            IORequest(
                arrival_us=float(i) * 2_000,
                workload_id=int(rng.integers(0, 2)),
                op=OpType(int(rng.integers(0, 2))),
                lpn=int(rng.integers(0, 2048)),
                length=int(rng.integers(1, 4)),
            )
            for i in range(100)
        ]
        exact = simulate(list(reqs), small_config, shared_sets(2))
        approx = fast_simulate(list(reqs), small_config, shared_sets(2))
        assert approx.total_latency_us == pytest.approx(
            exact.total_latency_us, rel=0.01
        )

    def test_total_latency_close_on_moderate_load(self, small_config, rng):
        # Under queueing the disciplines differ (arrival-order timeline vs
        # phase-order grants), so only coarse agreement is required here;
        # ranking fidelity is covered below and by the fidelity ablation.
        reqs = self._trace(rng)
        exact = simulate(list(reqs), small_config, shared_sets(2))
        approx = fast_simulate(list(reqs), small_config, shared_sets(2))
        assert approx.total_latency_us == pytest.approx(
            exact.total_latency_us, rel=0.5
        )
        assert approx.requests == exact.requests
        assert approx.subrequests == exact.subrequests

    def test_preserves_allocation_ordering(self, small_config, rng):
        """If the DES says isolation beats sharing for a mix, so must the
        fast model (and vice versa)."""
        # Write-heavy tenant 0 + read-only tenant 1, strongly interfering.
        reqs = [write(float(i) * 12, i % 256, wid=0) for i in range(600)] + [
            read(float(i) * 35, i % 1024, wid=1) for i in range(200)
        ]
        shared = shared_sets(2)
        isolated = {0: [0, 1, 2, 3], 1: [4, 5, 6, 7]}
        exact_gap = (
            simulate(list(reqs), small_config, shared).total_latency_us
            - simulate(list(reqs), small_config, isolated).total_latency_us
        )
        fast_gap = (
            fast_simulate(list(reqs), small_config, shared).total_latency_us
            - fast_simulate(list(reqs), small_config, isolated).total_latency_us
        )
        assert (exact_gap > 0) == (fast_gap > 0)


class TestPlacementModes:
    def test_reads_follow_static_stripes(self, small_config):
        # Consecutive-page read parallelises exactly like the DES.
        t = ServiceTimes.from_config(small_config)
        result = fast_simulate([read(0.0, 0, length=4)], small_config, shared_sets())
        assert result.read.mean_us == pytest.approx(t.read_service_us)

    def test_dynamic_mode_spreads_colocated_writes(self, small_config):
        from repro.ssd import PageAllocMode

        reqs = lambda: [write(float(i) * 0.1, 0) for i in range(32)]
        static = fast_simulate(
            reqs(), small_config, shared_sets(), {0: PageAllocMode.STATIC}
        )
        dynamic = fast_simulate(
            reqs(), small_config, shared_sets(), {0: PageAllocMode.DYNAMIC}
        )
        assert dynamic.write.mean_us < static.write.mean_us

    def test_channel_restriction_respected(self, small_config):
        # A one-channel tenant serialises on that channel's dies.
        t = ServiceTimes.from_config(small_config)
        sets = {0: [3]}
        result = fast_simulate(
            [write(0.0, i) for i in range(8)], small_config, sets
        )
        assert result.write.max_us > t.write_service_us
