"""Fault model: config validation, injector determinism, block retirement."""

import pytest

from repro.ssd import SSDConfig
from repro.ssd.faults import FaultConfig, FaultExpectation, FaultInjector, FaultWorkItem
from repro.ssd.ftl.gc import GarbageCollector, GCWorkItem
from repro.ssd.ftl.mapping import FlashArrayState
from repro.ssd.timing import ServiceTimes


def make_state(blocks=8, pages=4) -> FlashArrayState:
    return FlashArrayState(
        SSDConfig(
            channels=2,
            chips_per_channel=1,
            dies_per_chip=1,
            planes_per_die=1,
            blocks_per_plane=blocks,
            pages_per_block=pages,
            gc_threshold=0.25,
            gc_restore=0.4,
        )
    )


class TestFaultConfig:
    def test_defaults_are_disabled(self):
        cfg = FaultConfig()
        assert not cfg.any_enabled

    def test_any_enabled(self):
        assert FaultConfig(read_ber=0.1).any_enabled
        assert FaultConfig(program_fail_rate=0.1).any_enabled
        assert FaultConfig(erase_fail_rate=0.1).any_enabled

    @pytest.mark.parametrize(
        "field", ["read_ber", "program_fail_rate", "erase_fail_rate"]
    )
    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_rejects_bad_probabilities(self, field, value):
        with pytest.raises(ValueError, match=field):
            FaultConfig(**{field: value})

    def test_rejects_negative_retries_and_coupling(self):
        with pytest.raises(ValueError):
            FaultConfig(max_read_retries=-1)
        with pytest.raises(ValueError):
            FaultConfig(wear_coupling=-0.5)

    def test_expected_read_retries_geometric_sum(self):
        cfg = FaultConfig(read_ber=0.5, max_read_retries=3)
        assert cfg.expected_read_retries() == pytest.approx(0.5 + 0.25 + 0.125)
        assert FaultConfig(read_ber=0.0).expected_read_retries() == 0.0


class TestFaultInjector:
    def test_same_seed_same_draw_sequence(self):
        a = FaultInjector(FaultConfig(seed=7, read_ber=0.3, program_fail_rate=0.2))
        b = FaultInjector(FaultConfig(seed=7, read_ber=0.3, program_fail_rate=0.2))
        seq_a = [
            (a.read_outcome(0, i), a.program_fails(1, i)) for i in range(200)
        ]
        seq_b = [
            (b.read_outcome(0, i), b.program_fails(1, i)) for i in range(200)
        ]
        assert seq_a == seq_b
        assert a.summary() == b.summary()

    def test_different_seed_diverges(self):
        a = FaultInjector(FaultConfig(seed=1, read_ber=0.3))
        b = FaultInjector(FaultConfig(seed=2, read_ber=0.3))
        seq_a = [a.read_outcome(0, 0) for _ in range(200)]
        seq_b = [b.read_outcome(0, 0) for _ in range(200)]
        assert seq_a != seq_b

    def test_zero_rates_never_fail(self):
        inj = FaultInjector(FaultConfig())
        for i in range(50):
            out = inj.read_outcome(0, i)
            assert out.retries == 0 and not out.unrecoverable
            assert not inj.program_fails(0, i)
            assert not inj.erase_fails(0, i)
        assert inj.read_errors == inj.program_failures == inj.erase_failures == 0

    def test_wear_escalation_is_monotonic_and_clamped(self):
        inj = FaultInjector(FaultConfig(read_ber=0.01, wear_coupling=0.5))
        rates = [inj.effective_rate(0.01, n) for n in (0, 1, 10, 100, 10**6)]
        assert rates == sorted(rates)
        assert rates[0] == pytest.approx(0.01)
        assert rates[-1] < 1.0  # clamped below certainty

    def test_certain_error_exhausts_retries_unrecoverably(self):
        inj = FaultInjector(FaultConfig(read_ber=1.0, max_read_retries=3))
        out = inj.read_outcome(0, 0)
        assert out.retries == 3
        assert out.unrecoverable
        assert inj.unrecoverable_reads == 1
        assert inj.read_retries == 3

    def test_channel_health_tracks_errors(self):
        inj = FaultInjector(FaultConfig(program_fail_rate=1.0))
        assert inj.program_fails(3, 0)
        assert not FaultInjector(FaultConfig()).program_fails(3, 0)
        assert inj.channel_error_rate(3) == 1.0
        assert inj.channel_error_rate(0) == 0.0
        assert inj.worst_channel() == (3, 1.0)

    def test_summary_and_publish_mirror_counters(self):
        from repro.obs import MetricsRegistry

        inj = FaultInjector(FaultConfig(read_ber=1.0, max_read_retries=1))
        inj.read_outcome(0, 0)
        inj.note_retirement(64)
        summary = inj.summary()
        assert summary["retired_blocks"] == 1
        assert summary["lost_pages"] == 64
        reg = MetricsRegistry()
        inj.publish(reg)
        counters = reg.snapshot()["counters"]
        for key, value in summary.items():
            assert counters[f"faults.{key}"] == value


class TestRetirementAccounting:
    def test_retire_free_block_removes_capacity(self):
        state = make_state()
        plane = state.planes[0]
        before = plane.usable_pages
        free_before = plane.free_blocks
        plane.retire_free_block(2)  # fresh plane: blocks 1..7 are free
        assert plane.usable_pages == before - plane.pages_per_block
        assert plane.free_blocks == free_before - 1
        assert 2 in plane.bad_blocks
        with pytest.raises(ValueError):
            plane.retire_free_block(plane.active_block)  # not in the pool
        plane.check_invariants()

    def test_begin_retire_active_then_retire_block(self):
        state = make_state()
        plane = state.planes[0]
        state.write(0, plane)
        state.write(1, plane)
        failed = plane.active_block
        programmed = plane.next_page
        assert programmed == 2
        pulled = plane.begin_retire_active()
        assert pulled == failed
        assert plane.active_block != failed
        # Relocate the two valid pages, then retire.
        for ppn in plane.pages_in_block(failed):
            lpn = state.mapping.reverse(ppn)
            if lpn is None:
                continue
            state.mapping.unbind_ppn(ppn)
            plane.invalidate(ppn)
            state.mapping.bind(lpn, plane.allocate_page())
        plane.retire_block(failed, programmed_pages=programmed)
        # The whole block's capacity is gone, data survived elsewhere.
        assert plane.retired_pages == plane.pages_per_block
        assert state.mapping.lookup(0) is not None
        assert state.mapping.lookup(1) is not None
        plane.check_invariants()

    def test_retire_block_rejects_active_and_valid_blocks(self):
        state = make_state()
        plane = state.planes[0]
        with pytest.raises(ValueError, match="active"):
            plane.retire_block(plane.active_block)
        state.write(0, plane)
        failed = plane.begin_retire_active()
        with pytest.raises(ValueError, match="valid"):
            plane.retire_block(failed)

    def test_begin_retire_active_requires_a_spare(self):
        state = make_state(blocks=2)
        plane = state.planes[0]
        plane.begin_retire_active()  # consumes the only spare
        with pytest.raises(RuntimeError, match="spare"):
            plane.begin_retire_active()

    def test_device_wide_counters(self):
        state = make_state()
        plane = state.planes[0]
        total = state.usable_pages()
        plane.retire_free_block(3)
        assert state.retired_blocks() == 1
        assert state.usable_pages() == total - plane.pages_per_block


class TestEraseFailureRetirement:
    def _gc_pressure(self, state, plane):
        """Overwrite a working set until GC must run."""
        for lpn in range(12):
            state.write(lpn, plane)
        for lpn in range(12):
            state.write(lpn, plane)

    def test_failed_erase_retires_instead_of_freeing(self):
        state = make_state()
        plane = state.planes[0]
        inj = FaultInjector(FaultConfig(erase_fail_rate=1.0))
        gc = GarbageCollector(state, faults=inj)
        self._gc_pressure(state, plane)
        items = gc.collect(plane)
        assert items and all(item.retired for item in items)
        assert gc.collections == 0  # no successful erases
        assert plane.bad_blocks == {item.block for item in items}
        assert inj.retired_blocks == len(items)
        assert inj.lost_pages == len(items) * plane.pages_per_block
        plane.check_invariants()
        # Logical data survived the moves.
        for lpn in range(12):
            assert state.mapping.lookup(lpn) is not None

    def test_successful_erase_unchanged_under_zero_rate(self):
        state = make_state()
        plane = state.planes[0]
        gc = GarbageCollector(state, faults=FaultInjector(FaultConfig()))
        self._gc_pressure(state, plane)
        items = gc.collect(plane)
        assert items and not any(item.retired for item in items)
        assert gc.collections == len(items)
        assert not plane.bad_blocks

    def test_retired_victim_never_reselected(self):
        state = make_state()
        plane = state.planes[0]
        inj = FaultInjector(FaultConfig(erase_fail_rate=1.0))
        gc = GarbageCollector(state, faults=inj)
        self._gc_pressure(state, plane)
        retired = {item.block for item in gc.collect(plane)}
        assert retired
        victim = gc.pick_victim(plane)
        assert victim not in retired
        assert not (retired & plane.sealed_blocks())


class TestWorkItemTiming:
    def test_die_us_duck_typing(self, small_config):
        t = ServiceTimes.from_config(small_config)
        gc_item = GCWorkItem(plane_index=0, block=1, moves=3)
        fw_item = FaultWorkItem(plane_index=0, block=1, moves=3)
        assert gc_item.die_us(t) == pytest.approx(3 * t.move_die_us + t.erase_us)
        assert fw_item.die_us(t) == pytest.approx(3 * t.move_die_us + t.write_die_us)

    def test_read_die_with_retries_us(self, small_config):
        t = ServiceTimes.from_config(small_config)
        assert t.read_die_with_retries_us(0) == t.read_die_us
        assert t.read_die_with_retries_us(2) == pytest.approx(3 * t.read_die_us)
        with pytest.raises(ValueError):
            t.read_die_with_retries_us(-1)


class TestFaultExpectation:
    def test_from_config_multipliers(self):
        cfg = FaultConfig(read_ber=0.5, program_fail_rate=0.1, max_read_retries=2)
        exp = FaultExpectation.from_config(cfg)
        assert exp.read_die_multiplier == pytest.approx(1.0 + 0.5 + 0.25)
        assert exp.write_die_multiplier == pytest.approx(1.1)

    def test_disabled_config_is_identity(self):
        exp = FaultExpectation.from_config(FaultConfig())
        assert exp.read_die_multiplier == 1.0
        assert exp.write_die_multiplier == 1.0
