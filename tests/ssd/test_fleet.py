"""Fleet substrate: composed loops, seeded placement, migration."""

import pytest

from repro.ssd.config import SSDConfig
from repro.ssd.fleet import (
    Fleet,
    MigrationPlan,
    MigrationRecord,
    seeded_placement,
)
from repro.ssd.request import IORequest, OpType
from repro.ssd.simulator import SSDSimulator


def make_sims(n_devices, n_tenants, **kwargs):
    cfg = SSDConfig.small()
    sets = {t: list(range(cfg.channels)) for t in range(n_tenants)}
    return [SSDSimulator(cfg, sets, **kwargs) for _ in range(n_devices)]


def make_traces(n_tenants, per_tenant=20, spacing_us=50.0):
    """Deterministic alternating read/write traces, one per tenant."""
    traces = {}
    for t in range(n_tenants):
        reqs = []
        for i in range(per_tenant):
            op = OpType.WRITE if i % 2 == 0 else OpType.READ
            reqs.append(IORequest(
                arrival_us=10.0 + i * spacing_us + t * 3.0,
                workload_id=t,
                op=op,
                lpn=(i * 7) % 64,
                length=1,
            ))
        traces[t] = reqs
    return traces


class TestSeededPlacement:
    def test_deterministic_and_balanced(self):
        a = seeded_placement(6, 3, seed=42)
        b = seeded_placement(6, 3, seed=42)
        assert a == b
        loads = [list(a.values()).count(d) for d in range(3)]
        assert max(loads) - min(loads) <= 1

    def test_varies_with_seed(self):
        maps = {tuple(seeded_placement(8, 3, seed=s).items()) for s in range(20)}
        assert len(maps) > 1

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError):
            seeded_placement(0, 1, seed=0)
        with pytest.raises(ValueError):
            seeded_placement(1, 0, seed=0)


class TestMigrationPlan:
    def test_validates_fields(self):
        with pytest.raises(ValueError):
            MigrationPlan(time_us=-1.0, tenant=0, dst=0)
        with pytest.raises(ValueError):
            MigrationPlan(time_us=0.0, tenant=-1, dst=0)
        with pytest.raises(ValueError):
            MigrationPlan(time_us=0.0, tenant=0, dst=-1)

    def test_record_span(self):
        rec = MigrationRecord(tenant=0, src=0, dst=1, start_us=100.0)
        assert rec.span_us is None
        rec.first_dst_complete_us = 140.5
        assert rec.span_us == pytest.approx(40.5)


class TestFleetRun:
    def test_runs_all_tenants_to_completion(self):
        traces = make_traces(4)
        fleet = Fleet(make_sims(2, 4), seed=3)
        result = fleet.run(traces)
        total = sum(len(reqs) for reqs in traces.values())
        assert sum(r.requests for r in result.results) == total
        for t, reqs in traces.items():
            assert result.tenant_completions(t) == len(reqs)

    def test_per_device_results_match_placement(self):
        traces = make_traces(4)
        placement = {0: 0, 1: 0, 2: 1, 3: 1}
        fleet = Fleet(make_sims(2, 4), placement=placement)
        result = fleet.run(traces)
        assert result.results[0].requests == len(traces[0]) + len(traces[1])
        assert result.results[1].requests == len(traces[2]) + len(traces[3])
        assert result.placement_initial == placement
        assert result.placement_final == placement

    def test_rejects_placement_on_unknown_device(self):
        with pytest.raises(ValueError):
            Fleet(make_sims(2, 2), placement={0: 5})

    def test_rejects_second_run(self):
        fleet = Fleet(make_sims(1, 1))
        fleet.run(make_traces(1, per_tenant=2))
        with pytest.raises(RuntimeError):
            fleet.run(make_traces(1, per_tenant=2))

    def test_rejects_trace_tenant_without_placement(self):
        fleet = Fleet(make_sims(2, 2), placement={0: 0})
        with pytest.raises(ValueError):
            fleet.run(make_traces(2))

    def test_default_placement_is_seeded(self):
        traces = make_traces(4)
        r1 = Fleet(make_sims(2, 4), seed=9).run(traces)
        r2 = Fleet(make_sims(2, 4), seed=9).run(make_traces(4))
        assert r1.placement_initial == r2.placement_initial


class TestMigration:
    def test_request_count_conserved_across_migration(self):
        """A migrated tenant's completions across source + destination sum
        to its trace length (the conservation contract)."""
        traces = make_traces(3, per_tenant=30)
        placement = {0: 0, 1: 0, 2: 1}
        fleet = Fleet(make_sims(2, 3), placement=placement)
        mid = traces[0][len(traces[0]) // 2].arrival_us
        result = fleet.run(traces, [MigrationPlan(time_us=mid, tenant=0, dst=1)])
        assert result.tenant_completions(0) == len(traces[0])
        # both devices actually served tenant 0
        assert result.completions[0].get(0, 0) > 0
        assert result.completions[1].get(0, 0) > 0
        assert result.placement_final[0] == 1

    def test_migration_record_fields(self):
        traces = make_traces(2, per_tenant=30)
        placement = {0: 0, 1: 1}
        fleet = Fleet(make_sims(2, 2), placement=placement)
        mid = traces[0][10].arrival_us
        result = fleet.run(traces, [MigrationPlan(time_us=mid, tenant=0, dst=1)])
        [rec] = result.migrations
        assert (rec.tenant, rec.src, rec.dst) == (0, 0, 1)
        assert rec.start_us == pytest.approx(mid)
        assert rec.requests_replayed == 20  # arrivals at/after the flip
        assert rec.first_dst_complete_us is not None
        assert rec.first_dst_complete_us >= rec.start_us
        assert rec.span_us == pytest.approx(
            rec.first_dst_complete_us - rec.start_us
        )

    def test_migration_without_remaining_requests_has_no_span(self):
        traces = make_traces(2, per_tenant=5)
        placement = {0: 0, 1: 1}
        fleet = Fleet(make_sims(2, 2), placement=placement)
        late = traces[0][-1].arrival_us + 10_000.0
        result = fleet.run(traces, [MigrationPlan(late, tenant=0, dst=1)])
        [rec] = result.migrations
        assert rec.requests_replayed == 0
        assert rec.span_us is None

    def test_chained_migrations_compose(self):
        traces = make_traces(1, per_tenant=30)
        fleet = Fleet(make_sims(3, 1), placement={0: 0})
        t1 = traces[0][8].arrival_us
        t2 = traces[0][20].arrival_us
        result = fleet.run(traces, [
            MigrationPlan(t1, tenant=0, dst=1),
            MigrationPlan(t2, tenant=0, dst=2),
        ])
        assert [(m.src, m.dst) for m in result.migrations] == [(0, 1), (1, 2)]
        assert result.tenant_completions(0) == 30
        assert all(result.completions[d].get(0, 0) > 0 for d in range(3))

    def test_migrate_rejects_bad_arguments(self):
        fleet = Fleet(make_sims(2, 1), placement={0: 0})
        with pytest.raises(ValueError):
            fleet.migrate(0, 7)
        with pytest.raises(ValueError):
            fleet.migrate(5, 1)

    def test_hooks_fire(self):
        traces = make_traces(2, per_tenant=20)
        placement = {0: 0, 1: 1}
        fleet = Fleet(make_sims(2, 2), placement=placement)
        completions, started, closed = [], [], []
        fleet.on_complete = lambda dev, req: completions.append(dev)
        fleet.on_migration = lambda rec: started.append(rec.tenant)
        fleet.on_migration_complete = lambda rec: closed.append(rec.span_us)
        mid = traces[0][10].arrival_us
        fleet.run(traces, [MigrationPlan(mid, tenant=0, dst=1)])
        assert len(completions) == 40
        assert started == [0]
        assert len(closed) == 1 and closed[0] > 0


class TestDeterminism:
    def test_same_seed_same_schedule_identical_results(self):
        """Two invocations with the same seed and migration schedule yield
        identical per-device digests and migration records."""
        def one_run():
            traces = make_traces(4, per_tenant=25)
            fleet = Fleet(make_sims(3, 4), seed=11)
            # migrate tenant 0 to the next device over, deterministically
            placement = seeded_placement(4, 3, seed=11)
            plan = MigrationPlan(
                time_us=traces[0][10].arrival_us, tenant=0,
                dst=(placement[0] + 1) % 3,
            )
            return fleet.run(traces, [plan])

        r1, r2 = one_run(), one_run()
        assert [r.summary() for r in r1.results] == [
            r.summary() for r in r2.results
        ]
        assert [m.to_dict() for m in r1.migrations] == [
            m.to_dict() for m in r2.migrations
        ]
        assert r1.completions == r2.completions
        assert r1.makespan_us == r2.makespan_us
        assert r1.events == r2.events

    def test_solo_device_matches_plain_simulator(self):
        """A one-device fleet reproduces a plain SSDSimulator run of the
        same merged trace exactly (the composed loop adds no behaviour)."""
        traces = make_traces(2, per_tenant=15)
        fleet = Fleet(make_sims(1, 2), placement={0: 0, 1: 0})
        fleet_result = fleet.run(traces)

        merged = sorted(
            (r for reqs in make_traces(2, per_tenant=15).values() for r in reqs),
            key=lambda r: r.arrival_us,
        )
        [solo] = make_sims(1, 2)
        solo_result = solo.run(merged)
        assert fleet_result.results[0].summary() == solo_result.summary()
