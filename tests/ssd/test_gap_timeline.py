"""_GapTimeline: the fast model's work-conserving resource approximation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.ssd.fastmodel import _GapTimeline


class TestBasicPlacement:
    def test_idle_resource_serves_at_request_time(self):
        tl = _GapTimeline()
        assert tl.place(10.0, 5.0) == 15.0
        assert tl.tail == 15.0

    def test_busy_resource_queues(self):
        tl = _GapTimeline()
        tl.place(0.0, 10.0)
        assert tl.place(2.0, 5.0) == 15.0

    def test_gap_recorded_when_request_after_tail(self):
        tl = _GapTimeline()
        tl.place(0.0, 5.0)       # busy [0, 5]
        tl.place(20.0, 5.0)      # busy [20, 25]; gap [5, 20]
        assert tl.gaps == [[5.0, 20.0]]

    def test_backfills_gap(self):
        tl = _GapTimeline()
        tl.place(0.0, 5.0)
        tl.place(20.0, 5.0)      # gap [5, 20]
        end = tl.place(6.0, 4.0)  # fits in the gap at 6
        assert end == 10.0
        assert tl.tail == 25.0   # tail unchanged

    def test_gap_split_on_interior_placement(self):
        tl = _GapTimeline()
        tl.place(0.0, 2.0)
        tl.place(30.0, 2.0)      # gap [2, 30]
        tl.place(10.0, 5.0)      # occupies [10, 15]
        assert [2.0, 10.0] in tl.gaps
        assert [15.0, 30.0] in tl.gaps

    def test_gap_consumed_from_start(self):
        tl = _GapTimeline()
        tl.place(0.0, 2.0)
        tl.place(10.0, 2.0)      # gap [2, 10]
        tl.place(0.0, 8.0)       # rt before gap: starts at 2, fills whole gap
        assert tl.gaps == []

    def test_too_small_gap_skipped(self):
        tl = _GapTimeline()
        tl.place(0.0, 2.0)
        tl.place(4.0, 2.0)       # gap [2, 4]
        end = tl.place(0.0, 3.0)  # does not fit; goes to tail
        assert end == 9.0

    def test_old_gaps_pruned(self):
        tl = _GapTimeline()
        tl.place(0.0, 1.0)
        tl.place(10.0, 1.0)      # gap [1, 10]
        tl.place(100_000.0, 1.0)
        tl.place(100_001.0, 1.0)
        assert [1.0, 10.0] not in tl.gaps


class TestWorkConservation:
    @given(
        jobs=st.lists(
            st.tuples(st.floats(0, 1000), st.floats(0.1, 50)),
            min_size=1,
            max_size=60,
        )
    )
    def test_no_overlap_and_no_early_start(self, jobs):
        """Bookings never start before their request time, and total busy
        time equals the sum of durations (no lost or duplicated work)."""
        tl = _GapTimeline()
        intervals = []
        # Process in arrival order like the fast model does.
        for rt, dur in sorted(jobs):
            end = tl.place(rt, dur)
            start = end - dur
            assert start >= rt - 1e-9
            intervals.append((start, end))
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1 - 1e-6, "bookings overlap"

    def test_utilisation_beats_scalar_timeline(self):
        """The scenario that motivated gaps: a late-requesting job must not
        block earlier-requesting jobs from idle windows."""
        tl = _GapTimeline()
        tl.place(0.0, 1.0)        # short job
        tl.place(100.0, 10.0)     # requested late: gap [1, 100]
        # Ten early jobs fit in the gap instead of queueing at the tail.
        ends = [tl.place(float(i), 5.0) for i in range(1, 11)]
        assert max(ends) < 100.0
