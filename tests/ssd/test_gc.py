"""Greedy garbage collection."""

from repro.ssd import SSDConfig
from repro.ssd.ftl.gc import GarbageCollector
from repro.ssd.ftl.mapping import FlashArrayState


def make_state(blocks=8, pages=4) -> FlashArrayState:
    return FlashArrayState(
        SSDConfig(
            channels=2,
            chips_per_channel=1,
            dies_per_chip=1,
            planes_per_die=1,
            blocks_per_plane=blocks,
            pages_per_block=pages,
            gc_threshold=0.25,  # 2 blocks
            gc_restore=0.4,     # 3 blocks
        )
    )


def fill_blocks(state, plane, n_pages, start_lpn=0):
    for i in range(n_pages):
        state.write(start_lpn + i, plane)


class TestVictimSelection:
    def test_prefers_fewest_valid(self):
        state = make_state()
        gc = GarbageCollector(state)
        plane = state.planes[0]
        fill_blocks(state, plane, 8)          # seals blocks 0 and 1 full
        state.write(0, plane)                 # invalidate one page of block 0
        victim = gc.pick_victim(plane)
        assert victim == 0

    def test_ignores_fully_valid_blocks(self):
        state = make_state()
        gc = GarbageCollector(state)
        plane = state.planes[0]
        fill_blocks(state, plane, 8)
        assert gc.pick_victim(plane) is None  # both sealed blocks fully valid

    def test_prefers_empty_block_immediately(self):
        state = make_state()
        gc = GarbageCollector(state)
        plane = state.planes[0]
        fill_blocks(state, plane, 4)          # block 0 full
        fill_blocks(state, plane, 4)          # overwrite same LPNs: block 0 dead
        assert plane.valid_count[0] == 0
        assert gc.pick_victim(plane) == 0


class TestCollection:
    def test_reclaims_space_and_preserves_mapping(self):
        state = make_state()  # 8 blocks, threshold 2, restore 3
        gc = GarbageCollector(state)
        plane = state.planes[0]
        # Overwrite a 12-LPN working set until free blocks fall below the
        # restore level; half the written pages are then dead.
        fill_blocks(state, plane, 12, start_lpn=0)
        fill_blocks(state, plane, 12, start_lpn=0)
        assert plane.free_blocks < state.gc_restore_blocks
        items = gc.collect(plane)
        assert gc.collections == len(items) >= 1
        assert plane.free_blocks >= state.gc_restore_blocks
        plane.check_invariants()
        # Logical data survives (possibly relocated).
        for lpn in range(12):
            assert state.mapping.lookup(lpn) is not None

    def test_moves_counted(self):
        state = make_state()
        gc = GarbageCollector(state)
        plane = state.planes[0]
        fill_blocks(state, plane, 4, start_lpn=0)   # block 0: lpn 0..3
        state.write(0, plane)                        # block 1 gets lpn 0; block 0 has 3 valid
        items = gc.collect(plane) if state.needs_gc(plane) else []
        # Force a collection regardless of threshold for the assertion:
        if not items:
            victim = gc.pick_victim(plane)
            assert victim == 0
            item = gc._reclaim(plane, victim)
            assert item.moves == 3
            assert gc.pages_moved == 3

    def test_maybe_collect_noop_above_threshold(self):
        state = make_state()
        gc = GarbageCollector(state)
        plane = state.planes[0]
        assert gc.maybe_collect(plane) == []

    def test_collect_stops_when_no_reclaimable_victim(self):
        state = make_state(blocks=4)
        gc = GarbageCollector(state)
        plane = state.planes[0]
        # Fill the device with unique live data: nothing reclaimable.
        fill_blocks(state, plane, 12)
        items = gc.collect(plane)
        assert items == []


class TestGcUnderPressure:
    def test_sustained_overwrites_never_exhaust_plane(self):
        state = make_state(blocks=16, pages=4)
        gc = GarbageCollector(state)
        plane = state.planes[0]
        # Working set of 8 LPNs, overwritten many times: GC must keep up.
        for round_ in range(60):
            lpn = round_ % 8
            if not plane.has_free_page():
                gc.collect(plane)
            state.write(lpn, plane)
            gc.maybe_collect(plane)
            plane.check_invariants()
        assert gc.collections > 0
        for lpn in range(8):
            assert state.mapping.lookup(lpn) is not None
