"""Geometry: PPN packing bijection and enumeration helpers."""

from hypothesis import given
from hypothesis import strategies as st
import pytest

from repro.ssd import Geometry, PhysicalAddress, SSDConfig


@pytest.fixture
def geo(small_config):
    return Geometry(small_config)


class TestPackUnpack:
    def test_zero_address(self, geo):
        assert geo.pack(PhysicalAddress(0, 0, 0, 0, 0, 0)) == 0

    def test_last_address(self, geo):
        c = geo.config
        addr = PhysicalAddress(
            c.channels - 1,
            c.chips_per_channel - 1,
            c.dies_per_chip - 1,
            c.planes_per_die - 1,
            c.blocks_per_plane - 1,
            c.pages_per_block - 1,
        )
        assert geo.pack(addr) == geo.total_pages - 1

    @given(ppn=st.integers(min_value=0, max_value=8 * 2 * 1 * 4 * 64 * 128 - 1))
    def test_roundtrip_from_ppn(self, ppn):
        geo = Geometry(SSDConfig.small())
        assert geo.pack(geo.unpack(ppn)) == ppn

    @given(
        channel=st.integers(0, 7),
        chip=st.integers(0, 1),
        plane=st.integers(0, 3),
        block=st.integers(0, 63),
        page=st.integers(0, 127),
    )
    def test_roundtrip_from_address(self, channel, chip, plane, block, page):
        geo = Geometry(SSDConfig.small())
        addr = PhysicalAddress(channel, chip, 0, plane, block, page)
        assert geo.unpack(geo.pack(addr)) == addr

    def test_pack_rejects_out_of_range(self, geo):
        with pytest.raises(ValueError):
            geo.pack(PhysicalAddress(99, 0, 0, 0, 0, 0))
        with pytest.raises(ValueError):
            geo.pack(PhysicalAddress(0, 0, 0, 0, 0, -1))

    def test_unpack_rejects_out_of_range(self, geo):
        with pytest.raises(ValueError):
            geo.unpack(-1)
        with pytest.raises(ValueError):
            geo.unpack(geo.total_pages)

    def test_consecutive_ppns_walk_pages_first(self, geo):
        a0 = geo.unpack(0)
        a1 = geo.unpack(1)
        assert a1.page == a0.page + 1
        assert (a1.channel, a1.chip, a1.die, a1.plane, a1.block) == (
            a0.channel,
            a0.chip,
            a0.die,
            a0.plane,
            a0.block,
        )


class TestFastExtractors:
    @given(ppn=st.integers(min_value=0, max_value=8 * 2 * 4 * 64 * 128 - 1))
    def test_channel_of_matches_unpack(self, ppn):
        geo = Geometry(SSDConfig.small())
        assert geo.channel_of(ppn) == geo.unpack(ppn).channel

    @given(ppn=st.integers(min_value=0, max_value=8 * 2 * 4 * 64 * 128 - 1))
    def test_chip_of_matches_unpack(self, ppn):
        geo = Geometry(SSDConfig.small())
        addr = geo.unpack(ppn)
        assert geo.chip_of(ppn) == (addr.channel, addr.chip)

    @given(ppn=st.integers(min_value=0, max_value=8 * 2 * 4 * 64 * 128 - 1))
    def test_plane_index_consistent_with_base(self, ppn):
        geo = Geometry(SSDConfig.small())
        plane = geo.plane_index(ppn)
        base = geo.plane_base_ppn(plane)
        assert base <= ppn < base + geo.config.pages_per_plane


class TestEnumeration:
    def test_planes_in_channels_counts(self, geo):
        per_channel = geo.config.planes // geo.config.channels
        planes = geo.planes_in_channels([0, 3])
        assert len(planes) == 2 * per_channel
        assert planes == sorted(planes)

    def test_planes_in_channels_disjoint_per_channel(self, geo):
        all_planes = geo.planes_in_channels(list(range(geo.config.channels)))
        assert all_planes == list(range(geo.config.planes))

    def test_planes_in_channels_rejects_bad_channel(self, geo):
        with pytest.raises(ValueError):
            geo.planes_in_channels([geo.config.channels])

    def test_plane_base_rejects_bad_index(self, geo):
        with pytest.raises(ValueError):
            geo.plane_base_ppn(geo.config.planes)

    def test_iter_dies_unique_and_complete(self, geo):
        dies = list(geo.iter_dies())
        assert len(dies) == geo.config.dies
        assert len(set(dies)) == geo.config.dies

    def test_plane_channel_relationship(self, geo):
        # Planes of channel k must map back to channel k via base PPNs.
        for ch in range(geo.config.channels):
            for plane in geo.planes_in_channels([ch]):
                assert geo.channel_of(geo.plane_base_ppn(plane)) == ch

    def test_address_ordering_is_lexicographic(self):
        assert PhysicalAddress(0, 0, 0, 0, 0, 1) < PhysicalAddress(0, 0, 0, 0, 1, 0)
