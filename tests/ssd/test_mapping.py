"""FTL mapping and plane-state invariants."""

from hypothesis import given
from hypothesis import strategies as st
import pytest

from repro.ssd import Geometry, SSDConfig
from repro.ssd.ftl.mapping import FlashArrayState, MappingTable, PlaneState


def tiny_geometry() -> Geometry:
    return Geometry(
        SSDConfig(
            channels=2,
            chips_per_channel=1,
            dies_per_chip=1,
            planes_per_die=1,
            blocks_per_plane=4,
            pages_per_block=4,
        )
    )


class TestMappingTable:
    def test_bind_and_lookup(self):
        table = MappingTable()
        assert table.lookup(5) is None
        assert table.bind(5, 100) is None
        assert table.lookup(5) == 100
        assert table.reverse(100) == 5
        assert 5 in table
        assert len(table) == 1

    def test_overwrite_returns_old_ppn(self):
        table = MappingTable()
        table.bind(5, 100)
        old = table.bind(5, 200)
        assert old == 100
        assert table.lookup(5) == 200
        assert table.reverse(100) is None

    def test_bind_rejects_occupied_ppn(self):
        table = MappingTable()
        table.bind(1, 100)
        with pytest.raises(ValueError):
            table.bind(2, 100)

    def test_unbind_ppn(self):
        table = MappingTable()
        table.bind(7, 42)
        assert table.unbind_ppn(42) == 7
        assert table.lookup(7) is None
        assert len(table) == 0

    def test_unbind_unknown_raises(self):
        with pytest.raises(KeyError):
            MappingTable().unbind_ppn(1)


class TestPlaneState:
    def test_initial_accounting(self):
        plane = PlaneState(0, tiny_geometry())
        assert plane.free_pages == plane.total_pages == 16
        assert plane.live_pages == 0
        plane.check_invariants()

    def test_sequential_allocation_within_block(self):
        plane = PlaneState(0, tiny_geometry())
        ppns = [plane.allocate_page() for _ in range(4)]
        assert ppns == sorted(ppns)
        # First block's pages are consecutive.
        assert ppns[1] - ppns[0] == 1
        plane.check_invariants()

    def test_allocation_rolls_to_next_block(self):
        plane = PlaneState(0, tiny_geometry())
        for _ in range(5):
            plane.allocate_page()
        assert plane.live_pages == 5
        assert len(plane.sealed_blocks()) == 1
        plane.check_invariants()

    def test_fills_completely_then_raises(self):
        plane = PlaneState(0, tiny_geometry())
        for _ in range(plane.total_pages):
            plane.allocate_page()
        assert plane.free_pages == 0
        with pytest.raises(RuntimeError):
            plane.allocate_page()

    def test_invalidate_and_erase_cycle(self):
        plane = PlaneState(0, tiny_geometry())
        ppns = [plane.allocate_page() for _ in range(4)]  # fills block 0
        plane.allocate_page()  # block 1 active
        for ppn in ppns:
            plane.invalidate(ppn)
        block0 = 0
        assert plane.valid_count[block0] == 0
        plane.erase_block(block0)
        assert plane.erase_count[block0] == 1
        assert plane.free_blocks >= 1
        plane.check_invariants()

    def test_erase_rejects_valid_pages(self):
        plane = PlaneState(0, tiny_geometry())
        for _ in range(5):
            plane.allocate_page()
        with pytest.raises(ValueError):
            plane.erase_block(0)  # sealed but still valid

    def test_erase_rejects_active_block(self):
        plane = PlaneState(0, tiny_geometry())
        with pytest.raises(ValueError):
            plane.erase_block(plane.active_block)

    def test_invalidate_rejects_foreign_ppn(self):
        plane = PlaneState(0, tiny_geometry())
        with pytest.raises(ValueError):
            plane.invalidate(10**9)

    @given(ops=st.lists(st.integers(0, 9), min_size=1, max_size=60))
    def test_accounting_invariant_under_random_workload(self, ops):
        """live + dead + free == total after any overwrite sequence."""
        state = FlashArrayState(
            SSDConfig(
                channels=2,
                chips_per_channel=1,
                dies_per_chip=1,
                planes_per_die=1,
                blocks_per_plane=8,
                pages_per_block=4,
            )
        )
        plane = state.planes[0]
        for lpn in ops:
            if not plane.has_free_page():
                break
            state.write(lpn, plane)
            plane.check_invariants()
        # Mapping stays bijective.
        seen = set()
        for lpn in set(ops):
            ppn = state.mapping.lookup(lpn)
            if ppn is not None:
                assert ppn not in seen
                seen.add(ppn)
                assert state.mapping.reverse(ppn) == lpn


class TestFlashArrayState:
    def test_write_invalidates_old_location(self):
        state = FlashArrayState(
            SSDConfig(
                channels=2,
                chips_per_channel=1,
                dies_per_chip=1,
                planes_per_die=1,
                blocks_per_plane=4,
                pages_per_block=4,
            )
        )
        plane = state.planes[0]
        first = state.write(9, plane)
        second = state.write(9, plane)
        assert first != second
        assert state.mapping.lookup(9) == second
        assert plane.dead_pages == 1

    def test_needs_gc_threshold(self):
        config = SSDConfig(
            channels=2,
            chips_per_channel=1,
            dies_per_chip=1,
            planes_per_die=1,
            blocks_per_plane=100,
            pages_per_block=4,
        )
        state = FlashArrayState(config)
        plane = state.planes[0]
        assert not state.needs_gc(plane)
        # Exhaust blocks below the threshold.
        while plane.free_blocks >= state.gc_threshold_blocks:
            for _ in range(config.pages_per_block):
                state.write(hash((plane.free_blocks, plane.next_page)) % 10**6, plane)
        assert state.needs_gc(plane)
