"""Latency statistics and simulation results."""

import math

import pytest

from repro.ssd import LatencyAccumulator, OpStats, OpType
from repro.ssd.metrics import build_result


class TestOpStats:
    def test_online_aggregation(self):
        stats = OpStats()
        for v in (10.0, 30.0, 20.0):
            stats.add(v)
        assert stats.count == 3
        assert stats.total_us == 60.0
        assert stats.mean_us == 20.0
        assert stats.max_us == 30.0
        assert stats.min_us == 10.0

    def test_empty_mean_is_zero(self):
        assert OpStats().mean_us == 0.0

    def test_percentile_requires_samples(self):
        stats = OpStats()
        stats.add(1.0)
        with pytest.raises(RuntimeError):
            stats.percentile(50)

    def test_percentile_with_samples(self):
        stats = OpStats(samples=[])
        for v in range(1, 101):
            stats.add(float(v))
        assert stats.percentile(0) == 1.0
        assert stats.percentile(100) == 100.0
        assert stats.percentile(50) == pytest.approx(50.5)

    def test_percentile_validates_range(self):
        stats = OpStats(samples=[1.0])
        with pytest.raises(ValueError):
            stats.percentile(101)

    def test_merged(self):
        a = OpStats()
        b = OpStats()
        a.add(1.0)
        b.add(3.0)
        merged = a.merged(b)
        assert merged.count == 2
        assert merged.total_us == 4.0
        assert merged.max_us == 3.0
        assert merged.min_us == 1.0


class TestLatencyAccumulator:
    def test_per_workload_per_op(self):
        acc = LatencyAccumulator()
        acc.add(0, OpType.READ, 10.0)
        acc.add(0, OpType.WRITE, 100.0)
        acc.add(1, OpType.READ, 20.0)
        assert acc.stats(0, OpType.READ).count == 1
        assert acc.stats(1, OpType.WRITE).count == 0
        assert acc.workloads() == [0, 1]

    def test_op_totals(self):
        acc = LatencyAccumulator()
        acc.add(0, OpType.READ, 10.0)
        acc.add(1, OpType.READ, 30.0)
        totals = acc.op_totals(OpType.READ)
        assert totals.count == 2
        assert totals.total_us == 40.0

    def test_records_samples_when_enabled(self):
        acc = LatencyAccumulator(record_latencies=True)
        acc.add(0, OpType.READ, 5.0)
        assert acc.stats(0, OpType.READ).samples == [5.0]


class TestSimulationResult:
    def make_result(self):
        acc = LatencyAccumulator()
        acc.add(0, OpType.READ, 10.0)
        acc.add(0, OpType.WRITE, 200.0)
        acc.add(1, OpType.READ, 30.0)
        return build_result(acc, makespan_us=1000.0, requests=3, subrequests=5)

    def test_total_latency_is_paper_objective(self):
        result = self.make_result()
        assert result.total_latency_us == 240.0
        assert result.mean_total_us == pytest.approx(80.0)

    def test_per_workload_breakdown(self):
        result = self.make_result()
        assert result.workload_total_us(0) == 210.0
        assert result.workload_total_us(1) == 30.0
        assert result.workload_total_us(9) == 0.0

    def test_means(self):
        result = self.make_result()
        assert result.mean_read_us == pytest.approx(20.0)
        assert result.mean_write_us == pytest.approx(200.0)

    def test_summary_is_informative(self):
        text = self.make_result().summary()
        assert "3 reqs" in text
        assert "GC" in text

    def test_empty_result(self):
        result = build_result(
            LatencyAccumulator(), makespan_us=0.0, requests=0, subrequests=0
        )
        assert result.total_latency_us == 0.0
        assert result.mean_total_us == 0.0
        assert math.isinf(result.read.min_us)
