"""Latency statistics and simulation results."""

import math

import pytest

from repro.ssd import LatencyAccumulator, OpStats, OpType
from repro.ssd.metrics import build_result


class TestOpStats:
    def test_online_aggregation(self):
        stats = OpStats()
        for v in (10.0, 30.0, 20.0):
            stats.add(v)
        assert stats.count == 3
        assert stats.total_us == 60.0
        assert stats.mean_us == 20.0
        assert stats.max_us == 30.0
        assert stats.min_us == 10.0

    def test_empty_mean_is_zero(self):
        assert OpStats().mean_us == 0.0

    def test_percentile_requires_samples(self):
        stats = OpStats()
        stats.add(1.0)
        with pytest.raises(RuntimeError):
            stats.percentile(50)

    def test_percentile_with_samples(self):
        stats = OpStats(samples=[])
        for v in range(1, 101):
            stats.add(float(v))
        assert stats.percentile(0) == 1.0
        assert stats.percentile(100) == 100.0
        assert stats.percentile(50) == pytest.approx(50.5)

    def test_percentile_validates_range(self):
        stats = OpStats(samples=[1.0])
        with pytest.raises(ValueError):
            stats.percentile(101)

    def test_merged(self):
        a = OpStats()
        b = OpStats()
        a.add(1.0)
        b.add(3.0)
        merged = a.merged(b)
        assert merged.count == 2
        assert merged.total_us == 4.0
        assert merged.max_us == 3.0
        assert merged.min_us == 1.0

    def test_merged_keeps_samples_from_one_recorded_side(self):
        recorded = OpStats(samples=[])
        recorded.add(5.0)
        recorded.add(15.0)
        unrecorded = OpStats()
        unrecorded.add(100.0)  # non-empty but no samples
        for merged in (recorded.merged(unrecorded), unrecorded.merged(recorded)):
            assert merged.count == 3
            assert merged.samples == [5.0, 15.0]
            assert merged.percentile(100) == 15.0  # recorded subset only

    def test_merged_both_empty_min_is_zero(self):
        merged = OpStats().merged(OpStats())
        assert merged.count == 0
        assert merged.min_us == 0.0
        assert merged.samples is None

    def test_merged_both_recorded_concatenates(self):
        a = OpStats(samples=[])
        b = OpStats(samples=[])
        a.add(1.0)
        b.add(2.0)
        merged = a.merged(b)
        assert sorted(merged.samples) == [1.0, 2.0]

    def test_percentile_validates_before_requiring_samples(self):
        with pytest.raises(ValueError):
            OpStats().percentile(-1)

    def test_percentile_cache_tracks_new_samples(self):
        stats = OpStats(samples=[])
        stats.add(10.0)
        assert stats.percentile(100) == 10.0
        stats.add(30.0)  # cache must be invalidated by the new sample
        assert stats.percentile(100) == 30.0
        assert stats.percentile(0) == 10.0


class TestLatencyAccumulator:
    def test_per_workload_per_op(self):
        acc = LatencyAccumulator()
        acc.add(0, OpType.READ, 10.0)
        acc.add(0, OpType.WRITE, 100.0)
        acc.add(1, OpType.READ, 20.0)
        assert acc.stats(0, OpType.READ).count == 1
        assert acc.stats(1, OpType.WRITE).count == 0
        assert acc.workloads() == [0, 1]

    def test_op_totals(self):
        acc = LatencyAccumulator()
        acc.add(0, OpType.READ, 10.0)
        acc.add(1, OpType.READ, 30.0)
        totals = acc.op_totals(OpType.READ)
        assert totals.count == 2
        assert totals.total_us == 40.0

    def test_records_samples_when_enabled(self):
        acc = LatencyAccumulator(record_latencies=True)
        acc.add(0, OpType.READ, 5.0)
        assert acc.stats(0, OpType.READ).samples == [5.0]

    def test_unknown_workload_returns_empty_stats(self):
        acc = LatencyAccumulator()
        acc.add(0, OpType.READ, 5.0)
        missing = acc.stats(42, OpType.READ)
        assert missing.count == 0
        assert missing.mean_us == 0.0
        assert 42 not in acc.workloads()

    def test_op_totals_over_mixed_op_streams(self):
        acc = LatencyAccumulator(record_latencies=True)
        acc.add(0, OpType.READ, 10.0)
        acc.add(0, OpType.WRITE, 100.0)
        acc.add(1, OpType.READ, 30.0)
        acc.add(1, OpType.WRITE, 300.0)
        reads = acc.op_totals(OpType.READ)
        writes = acc.op_totals(OpType.WRITE)
        assert (reads.count, writes.count) == (2, 2)
        assert reads.total_us == 40.0
        assert writes.total_us == 400.0
        assert sorted(reads.samples) == [10.0, 30.0]
        assert sorted(writes.samples) == [100.0, 300.0]

    def test_set_stats_matches_fast_model_path(self):
        """The vectorised fast model installs pre-aggregated stats."""
        from repro.ssd.fastmodel import _bulk_stats
        import numpy as np

        acc = LatencyAccumulator(record_latencies=True)
        acc.add(0, OpType.READ, 7.0)  # online half
        bulk = _bulk_stats(np.array([10.0, 20.0, 30.0]), True)
        acc.set_stats(1, OpType.READ, bulk)
        assert acc.workloads() == [0, 1]
        assert acc.stats(1, OpType.READ).count == 3
        totals = acc.op_totals(OpType.READ)
        assert totals.count == 4
        assert totals.total_us == 67.0
        assert sorted(totals.samples) == [7.0, 10.0, 20.0, 30.0]

    def test_set_stats_without_samples_keeps_recorded_side(self):
        """Mixed record flags: totals stay exact, samples cover the
        recorded subset instead of vanishing."""
        from repro.ssd.fastmodel import _bulk_stats
        import numpy as np

        acc = LatencyAccumulator(record_latencies=True)
        acc.add(0, OpType.READ, 7.0)
        acc.set_stats(1, OpType.READ, _bulk_stats(np.array([10.0]), False))
        totals = acc.op_totals(OpType.READ)
        assert totals.count == 2
        assert totals.total_us == 17.0
        assert totals.samples == [7.0]


class TestSimulationResult:
    def make_result(self):
        acc = LatencyAccumulator()
        acc.add(0, OpType.READ, 10.0)
        acc.add(0, OpType.WRITE, 200.0)
        acc.add(1, OpType.READ, 30.0)
        return build_result(acc, makespan_us=1000.0, requests=3, subrequests=5)

    def test_total_latency_is_paper_objective(self):
        result = self.make_result()
        assert result.total_latency_us == 240.0
        assert result.mean_total_us == pytest.approx(80.0)

    def test_per_workload_breakdown(self):
        result = self.make_result()
        assert result.workload_total_us(0) == 210.0
        assert result.workload_total_us(1) == 30.0
        assert result.workload_total_us(9) == 0.0

    def test_means(self):
        result = self.make_result()
        assert result.mean_read_us == pytest.approx(20.0)
        assert result.mean_write_us == pytest.approx(200.0)

    def test_summary_is_informative(self):
        text = self.make_result().summary()
        assert "3 reqs" in text
        assert "GC" in text
        assert "p95" not in text  # no samples recorded

    def test_summary_includes_read_tail_when_recorded(self):
        acc = LatencyAccumulator(record_latencies=True)
        for v in range(1, 101):
            acc.add(0, OpType.READ, float(v))
        acc.add(0, OpType.WRITE, 200.0)
        result = build_result(acc, makespan_us=1000.0, requests=101, subrequests=101)
        text = result.summary()
        assert "read p95 95.0us" in text
        assert "p99 99.0us" in text

    def test_empty_result(self):
        result = build_result(
            LatencyAccumulator(), makespan_us=0.0, requests=0, subrequests=0
        )
        assert result.total_latency_us == 0.0
        assert result.mean_total_us == 0.0
        assert math.isinf(result.read.min_us)
