"""Static and dynamic page placers."""

from hypothesis import given
from hypothesis import strategies as st
import pytest

from repro.ssd import Geometry, SSDConfig
from repro.ssd.ftl.page_alloc import DynamicPagePlacer, PageAllocMode, StaticPagePlacer, make_placer


@pytest.fixture
def geo():
    return Geometry(SSDConfig.small())


class TestPageAllocMode:
    def test_from_str(self):
        assert PageAllocMode.from_str("static") is PageAllocMode.STATIC
        assert PageAllocMode.from_str(" DYNAMIC ") is PageAllocMode.DYNAMIC

    def test_from_str_rejects_unknown(self):
        with pytest.raises(ValueError):
            PageAllocMode.from_str("hybrid")  # hybrid is a policy, not a mode


class TestStaticPlacer:
    def test_consecutive_lpns_hit_different_channels(self, geo):
        placer = StaticPagePlacer(geo, [0, 1, 2, 3])
        channels = [
            geo.channel_of(geo.plane_base_ppn(placer.place(lpn)))
            for lpn in range(4)
        ]
        assert channels == [0, 1, 2, 3]

    def test_stays_within_allowed_channels(self, geo):
        allowed = [2, 5]
        placer = StaticPagePlacer(geo, allowed)
        for lpn in range(200):
            plane = placer.place(lpn)
            channel = geo.channel_of(geo.plane_base_ppn(plane))
            assert channel in allowed

    def test_deterministic(self, geo):
        placer = StaticPagePlacer(geo, [0, 1])
        assert [placer.place(i) for i in range(50)] == [
            placer.place(i) for i in range(50)
        ]

    def test_covers_all_planes_of_channel_set(self, geo):
        allowed = [0, 1]
        placer = StaticPagePlacer(geo, allowed)
        planes = {placer.place(lpn) for lpn in range(1000)}
        assert planes == set(geo.planes_in_channels(allowed))

    def test_rejects_empty_channel_set(self, geo):
        with pytest.raises(ValueError):
            StaticPagePlacer(geo, [])

    @given(lpn=st.integers(0, 10**6))
    def test_any_lpn_lands_in_allowed_set(self, lpn):
        geo = Geometry(SSDConfig.small())
        placer = StaticPagePlacer(geo, [1, 4, 6])
        plane = placer.place(lpn)
        channel = geo.channel_of(geo.plane_base_ppn(plane))
        assert channel in (1, 4, 6)


class TestDynamicPlacer:
    def test_picks_least_busy(self, geo):
        loads = {}
        placer = DynamicPagePlacer(geo, [0, 1], lambda p: (loads.get(p, 0),))
        candidates = geo.planes_in_channels([0, 1])
        for p in candidates:
            loads[p] = 5
        idle = candidates[7]
        loads[idle] = 0
        assert placer.place(0) == idle

    def test_round_robins_on_ties(self, geo):
        placer = DynamicPagePlacer(geo, [0], lambda p: (0,))
        picks = [placer.place(i) for i in range(8)]
        assert len(set(picks)) == len(picks)  # spreads over distinct planes

    def test_rejects_empty_channel_set(self, geo):
        with pytest.raises(ValueError):
            DynamicPagePlacer(geo, [], lambda p: (0,))


class TestFactory:
    def test_make_static(self, geo):
        placer = make_placer(PageAllocMode.STATIC, geo, [0], lambda p: (0,))
        assert isinstance(placer, StaticPagePlacer)

    def test_make_dynamic(self, geo):
        placer = make_placer(PageAllocMode.DYNAMIC, geo, [0], lambda p: (0,))
        assert isinstance(placer, DynamicPagePlacer)
