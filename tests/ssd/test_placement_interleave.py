"""Channel interleaving of dynamic placement (regression tests).

An earlier revision ordered the dynamic placer's candidates channel-major,
so tie-broken writes serialised on one channel's bus.  These tests pin the
interleaved behaviour in both engines.
"""

from repro.ssd import (
    FastLatencyModel,
    Geometry,
    IORequest,
    OpType,
    PageAllocMode,
    SSDConfig,
    SSDSimulator,
)
from repro.ssd.ftl.page_alloc import DynamicPagePlacer


class TestPlacerInterleaving:
    def test_idle_ties_alternate_channels(self):
        geo = Geometry(SSDConfig.small())
        placer = DynamicPagePlacer(geo, [0, 1, 2, 3], lambda p: (0,))
        channels = [
            geo.channel_of(geo.plane_base_ppn(placer.place(i))) for i in range(8)
        ]
        # Consecutive equal-load picks must cycle through all four channels.
        assert channels[:4] == [0, 1, 2, 3]
        assert channels[4:] == [0, 1, 2, 3]


class TestEngineWriteSpreading:
    def _burst(self, n=64):
        return [
            IORequest(arrival_us=0.0, workload_id=0, op=OpType.WRITE, lpn=i)
            for i in range(n)
        ]

    def test_des_dynamic_burst_uses_every_channel(self, small_config):
        sim = SSDSimulator(
            small_config,
            {0: list(range(8))},
            {0: PageAllocMode.DYNAMIC},
        )
        sim.run(self._burst())
        used = [c for c in sim.channels if c.grants > 0]
        assert len(used) == small_config.channels

    def test_fast_dynamic_burst_matches_des_scale(self, small_config):
        reqs = self._burst()
        des = SSDSimulator(
            small_config, {0: list(range(8))}, {0: PageAllocMode.DYNAMIC}
        ).run([IORequest(r.arrival_us, r.workload_id, r.op, r.lpn) for r in reqs])
        fast = FastLatencyModel(
            small_config, {0: list(range(8))}, {0: PageAllocMode.DYNAMIC}
        ).run([IORequest(r.arrival_us, r.workload_id, r.op, r.lpn) for r in reqs])
        # A simultaneous 64-write burst over 16 dies: both engines should
        # land within 2x of each other (no single-channel pathologies).
        ratio = fast.write.mean_us / des.write.mean_us
        assert 0.5 < ratio < 2.0

    def test_dynamic_beats_static_for_colocated_writes(self, small_config):
        # All writes target LPNs that statically map to one channel.
        reqs = [
            IORequest(arrival_us=float(i), workload_id=0, op=OpType.WRITE, lpn=i * 8)
            for i in range(32)
        ]
        static = SSDSimulator(
            small_config, {0: list(range(8))}, {0: PageAllocMode.STATIC}
        ).run([IORequest(r.arrival_us, r.workload_id, r.op, r.lpn) for r in reqs])
        dynamic = SSDSimulator(
            small_config, {0: list(range(8))}, {0: PageAllocMode.DYNAMIC}
        ).run([IORequest(r.arrival_us, r.workload_id, r.op, r.lpn) for r in reqs])
        assert dynamic.write.mean_us < static.write.mean_us / 2
