"""IORequest / SubRequest / OpType semantics."""

import pytest

from repro.ssd import IORequest, OpType
from repro.ssd.request import SubRequest


class TestOpType:
    @pytest.mark.parametrize(
        "text,expected",
        [("r", OpType.READ), ("Read", OpType.READ), ("0", OpType.READ),
         ("W", OpType.WRITE), ("write", OpType.WRITE), ("1", OpType.WRITE)],
    )
    def test_from_str(self, text, expected):
        assert OpType.from_str(text) is expected

    def test_from_str_rejects_unknown(self):
        with pytest.raises(ValueError):
            OpType.from_str("trim")

    def test_str_roundtrip(self):
        assert OpType.from_str(str(OpType.READ)) is OpType.READ
        assert OpType.from_str(str(OpType.WRITE)) is OpType.WRITE


class TestIORequest:
    def test_basic_fields(self):
        req = IORequest(arrival_us=5.0, workload_id=2, op=OpType.WRITE, lpn=10, length=4)
        assert list(req.lpns()) == [10, 11, 12, 13]
        assert not req.is_read

    def test_coerces_int_op(self):
        req = IORequest(arrival_us=0.0, workload_id=0, op=0, lpn=0)  # type: ignore[arg-type]
        assert req.op is OpType.READ

    def test_latency_requires_completion(self):
        req = IORequest(arrival_us=1.0, workload_id=0, op=OpType.READ, lpn=0)
        with pytest.raises(RuntimeError):
            _ = req.latency_us
        req.complete_us = 101.0
        assert req.latency_us == pytest.approx(100.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(arrival_us=-1.0, workload_id=0, op=OpType.READ, lpn=0),
            dict(arrival_us=0.0, workload_id=-1, op=OpType.READ, lpn=0),
            dict(arrival_us=0.0, workload_id=0, op=OpType.READ, lpn=-1),
            dict(arrival_us=0.0, workload_id=0, op=OpType.READ, lpn=0, length=0),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            IORequest(**kwargs)


class TestSubRequest:
    def test_delegates_to_parent(self):
        req = IORequest(arrival_us=3.0, workload_id=7, op=OpType.WRITE, lpn=100, length=2)
        sub = SubRequest(parent=req, lpn=101)
        assert sub.op is OpType.WRITE
        assert sub.workload_id == 7
        assert sub.arrival_us == 3.0
