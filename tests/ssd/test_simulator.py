"""Event-driven simulator: exact latencies, conflicts, GC, disciplines."""

import pytest

from repro.ssd import IORequest, OpType, ServiceTimes, SSDSimulator, simulate


def shared_sets(n_tenants=1, channels=8):
    return {w: list(range(channels)) for w in range(n_tenants)}


def read(t, lpn, wid=0, length=1):
    return IORequest(arrival_us=t, workload_id=wid, op=OpType.READ, lpn=lpn, length=length)


def write(t, lpn, wid=0, length=1):
    return IORequest(arrival_us=t, workload_id=wid, op=OpType.WRITE, lpn=lpn, length=length)


class TestSingleOperations:
    def test_single_read_latency_is_unloaded_service_time(self, small_config):
        t = ServiceTimes.from_config(small_config)
        result = simulate([read(0.0, 0)], small_config, shared_sets())
        assert result.read.mean_us == pytest.approx(t.read_service_us)
        assert result.requests == 1
        assert result.subrequests == 1

    def test_single_write_latency_is_unloaded_service_time(self, small_config):
        t = ServiceTimes.from_config(small_config)
        result = simulate([write(0.0, 0)], small_config, shared_sets())
        assert result.write.mean_us == pytest.approx(t.write_service_us)

    def test_multi_page_read_on_idle_device_parallelises(self, small_config):
        t = ServiceTimes.from_config(small_config)
        # 4 consecutive pages stripe to 4 channels: same latency as 1 page.
        result = simulate([read(0.0, 0, length=4)], small_config, shared_sets())
        assert result.read.mean_us == pytest.approx(t.read_service_us)
        assert result.subrequests == 4

    def test_request_completion_time_recorded(self, small_config):
        req = read(10.0, 0)
        simulate([req], small_config, shared_sets())
        assert req.complete_us > 10.0
        assert req.latency_us > 0


class TestConflicts:
    def test_same_die_reads_serialise(self, small_config):
        t = ServiceTimes.from_config(small_config)
        # Same LPN -> same die; second read waits for the first die phase.
        result = simulate(
            [read(0.0, 0), read(0.0, 0)], small_config, shared_sets(),
        )
        assert result.read.max_us > t.read_service_us
        assert result.die_wait_us > 0 or result.channel_wait_us > 0

    def test_different_channels_do_not_conflict(self, small_config):
        t = ServiceTimes.from_config(small_config)
        # LPN 0 and 1 stripe to different channels.
        result = simulate(
            [read(0.0, 0), read(0.0, 1)], small_config, shared_sets(),
        )
        assert result.read.max_us == pytest.approx(t.read_service_us)

    def test_read_behind_write_fifo_waits_for_program(self, small_config):
        t = ServiceTimes.from_config(small_config)
        result = simulate(
            [write(0.0, 0), read(1.0, 0)], small_config, shared_sets(),
        )
        # The read targets the same die mid-program: it waits.
        assert result.read.mean_us > t.read_service_us

    def test_isolated_tenants_do_not_interfere(self, small_config):
        t = ServiceTimes.from_config(small_config)
        sets = {0: [0, 1, 2, 3], 1: [4, 5, 6, 7]}
        # Tenant 0 hammers its channels; tenant 1's single read stays clean.
        reqs = [write(0.0, i, wid=0) for i in range(16)] + [read(0.5, 0, wid=1)]
        result = simulate(reqs, small_config, sets)
        assert result.per_workload[1][0].mean_us == pytest.approx(t.read_service_us)

    def test_shared_tenants_do_interfere(self, small_config):
        t = ServiceTimes.from_config(small_config)
        reqs = [write(0.0, i, wid=0) for i in range(64)] + [read(0.5, 0, wid=1)]
        result = simulate(reqs, small_config, shared_sets(2))
        assert result.per_workload[1][0].mean_us > t.read_service_us


class TestDisciplines:
    def test_read_priority_improves_reads_under_write_load(self, small_config):
        reqs = lambda: [write(0.0, i, wid=0) for i in range(64)] + [
            read(10.0, i, wid=1) for i in range(16)
        ]
        fifo = SSDSimulator(small_config, shared_sets(2)).run(reqs())
        prio = SSDSimulator(small_config, shared_sets(2), read_priority=True).run(reqs())
        assert prio.read.mean_us < fifo.read.mean_us

    def test_dynamic_mode_avoids_busy_dies(self, small_config):
        from repro.ssd import PageAllocMode

        # All writes to the same LPN region: static hits one die repeatedly,
        # dynamic spreads to idle dies.
        reqs = lambda: [write(float(i) * 0.1, 0, wid=0) for i in range(32)]
        static = simulate(
            reqs(), small_config, shared_sets(), {0: PageAllocMode.STATIC}
        )
        dynamic = simulate(
            reqs(), small_config, shared_sets(), {0: PageAllocMode.DYNAMIC}
        )
        assert dynamic.write.mean_us < static.write.mean_us


class TestGarbageCollection:
    def test_gc_triggers_under_overwrite_pressure(self, tiny_config):
        # Tiny planes: sustained overwrites of a small working set force GC.
        reqs = [write(float(i), i % 64, wid=0) for i in range(2000)]
        result = simulate(reqs, tiny_config, shared_sets(channels=8))
        assert result.gc_collections > 0
        assert result.requests == 2000

    def test_gc_work_charged_to_latency(self, tiny_config):
        light = simulate(
            [write(float(i) * 1000, i % 64) for i in range(100)],
            tiny_config,
            shared_sets(),
        )
        assert light.gc_collections == 0


class TestResultIntegrity:
    def test_all_requests_complete(self, small_config, rng):
        reqs = [
            IORequest(
                arrival_us=float(rng.integers(0, 1000)),
                workload_id=int(rng.integers(0, 2)),
                op=OpType(int(rng.integers(0, 2))),
                lpn=int(rng.integers(0, 512)),
                length=int(rng.integers(1, 5)),
            )
            for _ in range(300)
        ]
        result = simulate(reqs, small_config, shared_sets(2))
        assert result.requests == 300
        assert result.read.count + result.write.count == 300
        assert result.subrequests == sum(r.length for r in reqs)
        assert result.makespan_us >= max(r.arrival_us for r in reqs)

    def test_unsorted_input_accepted(self, small_config):
        reqs = [read(5.0, 0), read(1.0, 1), read(3.0, 2)]
        result = simulate(reqs, small_config, shared_sets())
        assert result.requests == 3

    def test_on_submit_hook_sees_every_request(self, small_config):
        seen = []
        sim = SSDSimulator(small_config, shared_sets(), on_submit=seen.append)
        reqs = [read(float(i), i) for i in range(10)]
        sim.run(reqs)
        assert len(seen) == 10
        assert [r.arrival_us for r in seen] == sorted(r.arrival_us for r in reqs)

    def test_latency_recording(self, small_config):
        result = simulate(
            [read(0.0, i) for i in range(10)],
            small_config,
            shared_sets(),
            record_latencies=True,
        )
        assert result.read.samples is not None
        assert len(result.read.samples) == 10
        assert result.read.percentile(50) > 0
