"""Service-time decomposition."""

import pytest

from repro.ssd import ServiceTimes, SSDConfig


class TestServiceTimes:
    def test_from_paper_config(self, paper_config):
        t = ServiceTimes.from_config(paper_config)
        assert t.read_flash_us == 20.0
        assert t.write_flash_us == 200.0
        assert t.erase_us == 1500.0
        assert t.transfer_us == pytest.approx(16384 / 400)

    def test_read_phases(self, paper_config):
        t = ServiceTimes.from_config(paper_config)
        assert t.read_die_us == pytest.approx(20.0 + t.command_us)
        assert t.read_bus_us == t.transfer_us
        assert t.read_service_us == pytest.approx(t.read_die_us + t.read_bus_us)

    def test_write_phases(self, paper_config):
        t = ServiceTimes.from_config(paper_config)
        assert t.write_die_us == 200.0
        assert t.write_bus_us == pytest.approx(t.transfer_us + t.command_us)
        assert t.write_service_us == pytest.approx(t.write_bus_us + t.write_die_us)

    def test_move_avoids_bus(self, paper_config):
        t = ServiceTimes.from_config(paper_config)
        assert t.move_die_us == pytest.approx(220.0)

    def test_write_slower_than_read(self, paper_config):
        t = ServiceTimes.from_config(paper_config)
        assert t.write_service_us > t.read_service_us

    def test_faster_bus_shrinks_transfer(self):
        slow = ServiceTimes.from_config(SSDConfig(channel_bandwidth_mbps=200.0))
        fast = ServiceTimes.from_config(SSDConfig(channel_bandwidth_mbps=800.0))
        assert slow.transfer_us == pytest.approx(4 * fast.transfer_us)
