"""Wear tracking."""

import pytest

from repro.ssd import SSDConfig
from repro.ssd.ftl.gc import GarbageCollector
from repro.ssd.ftl.mapping import FlashArrayState
from repro.ssd.ftl.wear import WearTracker


def small_state():
    return FlashArrayState(
        SSDConfig(
            channels=2,
            chips_per_channel=1,
            dies_per_chip=1,
            planes_per_die=1,
            blocks_per_plane=16,
            pages_per_block=4,
            gc_threshold=0.2,
            gc_restore=0.35,
        )
    )


class TestWearTracker:
    def test_fresh_device_has_no_wear(self):
        stats = WearTracker(small_state()).stats()
        assert stats.total_erases == 0
        assert stats.max_erases == 0
        assert stats.wear_levelling_factor == 1.0

    def test_counts_erases_from_gc(self):
        state = small_state()
        gc = GarbageCollector(state)
        plane = state.planes[0]
        # Overwrite a small working set long enough to force collections.
        for i in range(300):
            if not plane.has_free_page():
                gc.collect(plane)
            state.write(i % 8, plane)
            gc.maybe_collect(plane)
        stats = WearTracker(state).stats()
        assert stats.total_erases > 0
        assert stats.max_erases >= stats.min_erases
        assert stats.mean_erases == pytest.approx(
            stats.total_erases / (2 * 16)
        )

    def test_round_robin_reuse_spreads_wear(self):
        """The FIFO free-block pool must not hammer one block.

        Greedy GC is not a wear-leveller, so the distribution is uneven —
        but every block of the active plane must participate, and no single
        block may absorb more than a handful of times its fair share.
        """
        state = small_state()
        gc = GarbageCollector(state)
        plane = state.planes[0]
        for i in range(2000):
            if not plane.has_free_page():
                gc.collect(plane)
            state.write(i % 8, plane)
            gc.maybe_collect(plane)
        counts = plane.erase_count
        assert all(c >= 1 for c in counts), "every block should cycle through"
        mean = sum(counts) / len(counts)
        assert max(counts) < 4 * mean

    def test_str_contains_wlf(self):
        assert "WLF" in str(WearTracker(small_state()).stats())
