"""Adversarial tenant scenarios — structure, determinism, validation."""

import pytest

from repro.workloads import (
    SCENARIOS,
    build_scenario,
    migrating_hotspot,
    noisy_neighbor,
    phase_change,
)

PHASES = 4
PHASE_US = 20_000.0


def build(name, **kwargs):
    kwargs.setdefault("phases", PHASES)
    kwargs.setdefault("phase_us", PHASE_US)
    kwargs.setdefault("seed", 7)
    return build_scenario(name, **kwargs)


def phase_slice(workload, phase):
    lo, hi = phase * PHASE_US, (phase + 1) * PHASE_US
    return [r for r in workload.requests if lo <= r.arrival_us < hi]


def tenant_counts(requests, n_tenants):
    counts = [0] * n_tenants
    for r in requests:
        counts[r.workload_id] += 1
    return counts


class TestCommonStructure:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_sorted_and_bounded(self, name):
        workload = build(name)
        arrivals = [r.arrival_us for r in workload.requests]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] >= 0.0
        assert arrivals[-1] < PHASES * PHASE_US

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_metadata_records_the_recipe(self, name):
        workload = build(name)
        assert workload.name == name
        assert workload.metadata["phases"] == PHASES
        assert workload.metadata["phase_us"] == PHASE_US
        assert workload.metadata["seed"] == 7
        assert len(workload.metadata["phase_specs"]) == PHASES

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_every_phase_has_traffic(self, name):
        workload = build(name)
        for phase in range(PHASES):
            assert phase_slice(workload, phase)


class TestDeterminism:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_same_seed_same_trace(self, name):
        a, b = build(name), build(name)
        assert len(a.requests) == len(b.requests)
        assert all(
            (x.arrival_us, x.workload_id, x.op, x.lpn, x.length)
            == (y.arrival_us, y.workload_id, y.op, y.lpn, y.length)
            for x, y in zip(a.requests, b.requests)
        )

    def test_different_seed_different_trace(self):
        a, b = build("migrating_hotspot"), build("migrating_hotspot", seed=8)
        assert [r.arrival_us for r in a.requests] != [
            r.arrival_us for r in b.requests
        ]


class TestMigratingHotspot:
    def test_hotspot_rotates_tenants(self):
        workload = build("migrating_hotspot", n_tenants=4)
        for phase in range(PHASES):
            counts = tenant_counts(phase_slice(workload, phase), 4)
            assert counts.index(max(counts)) == phase % 4

    def test_hot_phase_is_write_leaning(self):
        workload = build("migrating_hotspot", hot_write_ratio=0.8)
        for phase in range(PHASES):
            hot = phase % 4
            sliced = phase_slice(workload, phase)
            hot_reqs = [r for r in sliced if r.workload_id == hot]
            writes = sum(1 for r in hot_reqs if not r.is_read)
            assert writes / len(hot_reqs) > 0.5


class TestPhaseChange:
    def test_changer_flips_write_ratio(self):
        workload = build("phase_change")
        fractions = []
        for phase in range(PHASES):
            reqs = [
                r for r in phase_slice(workload, phase) if r.workload_id == 0
            ]
            writes = sum(1 for r in reqs if not r.is_read)
            fractions.append(writes / len(reqs))
        assert fractions[0] < 0.5 < fractions[1]
        assert fractions[2] < 0.5 < fractions[3]

    def test_background_tenants_stay_stationary(self):
        workload = build("phase_change", n_tenants=4)
        for wid in range(1, 4):
            counts = [
                len([
                    r
                    for r in phase_slice(workload, phase)
                    if r.workload_id == wid
                ])
                for phase in range(PHASES)
            ]
            assert max(counts) < 3 * max(1, min(counts))


class TestNoisyNeighbor:
    def test_neighbor_alternates_quiet_and_loud(self):
        workload = build("noisy_neighbor", n_tenants=4, noise_factor=8.0)
        neighbor_counts = [
            len([
                r for r in phase_slice(workload, phase) if r.workload_id == 3
            ])
            for phase in range(PHASES)
        ]
        assert neighbor_counts[1] > 5 * neighbor_counts[0]
        assert neighbor_counts[3] > 5 * neighbor_counts[2]

    def test_loud_phases_are_write_storms(self):
        workload = build("noisy_neighbor", n_tenants=4)
        loud = [
            r for r in phase_slice(workload, 1) if r.workload_id == 3
        ]
        writes = sum(1 for r in loud if not r.is_read)
        assert writes / len(loud) > 0.8


class TestValidation:
    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            build_scenario("nope")

    @pytest.mark.parametrize("builder,kwargs", [
        (migrating_hotspot, {"n_tenants": 1}),
        (migrating_hotspot, {"phases": 0}),
        (migrating_hotspot, {"hot_rate_factor": 1.0}),
        (migrating_hotspot, {"phase_us": 0.0}),
        (phase_change, {"n_tenants": 0}),
        (phase_change, {"phases": 1}),
        (noisy_neighbor, {"n_tenants": 1}),
        (noisy_neighbor, {"phases": 1}),
        (noisy_neighbor, {"noise_factor": 1.0}),
    ])
    def test_bad_knobs_rejected(self, builder, kwargs):
        with pytest.raises(ValueError):
            builder(**kwargs)

    def test_registry_matches_builders(self):
        assert SCENARIOS == {
            "migrating_hotspot": migrating_hotspot,
            "phase_change": phase_change,
            "noisy_neighbor": noisy_neighbor,
        }
