"""Chronological mixing of tenant streams."""

import pytest

from repro.ssd import IORequest, OpType
from repro.workloads import MixedWorkload, WorkloadSpec, generate, mix, synthesize_mix


def spec(name="t", write_ratio=0.5, rate=1000.0):
    return WorkloadSpec(name=name, write_ratio=write_ratio, rate_rps=rate,
                        footprint_pages=4096)


class TestMix:
    def test_merges_chronologically(self):
        s0, s1 = spec("a"), spec("b")
        streams = [
            generate(s0, 50, workload_id=0, seed=1),
            generate(s1, 50, workload_id=1, seed=2),
        ]
        mixed = mix(streams, [s0, s1])
        arrivals = [r.arrival_us for r in mixed.requests]
        assert arrivals == sorted(arrivals)
        assert len(mixed.requests) == 100

    def test_limit_truncates_head(self):
        s0, s1 = spec("a"), spec("b")
        streams = [
            generate(s0, 50, workload_id=0, seed=1),
            generate(s1, 50, workload_id=1, seed=2),
        ]
        mixed = mix(streams, [s0, s1], limit=30)
        assert len(mixed.requests) == 30
        full = mix(streams, [s0, s1])
        assert [r.arrival_us for r in mixed.requests] == [
            r.arrival_us for r in full.requests[:30]
        ]

    def test_rejects_misaligned_specs(self):
        with pytest.raises(ValueError):
            mix([[]], [spec(), spec()])

    def test_rejects_mislabelled_stream(self):
        bad = [IORequest(arrival_us=0.0, workload_id=1, op=OpType.READ, lpn=0)]
        with pytest.raises(ValueError):
            mix([bad], [spec()])


class TestMixedWorkloadStats:
    def make(self):
        s0 = spec("w", write_ratio=1.0)
        s1 = spec("r", write_ratio=0.0)
        streams = [
            generate(s0, 60, workload_id=0, seed=3),
            generate(s1, 40, workload_id=1, seed=4),
        ]
        return mix(streams, [s0, s1])

    def test_proportions_sum_to_one(self):
        mixed = self.make()
        props = mixed.proportions()
        assert sum(props) == pytest.approx(1.0)
        assert props[0] == pytest.approx(0.6, abs=0.01)

    def test_count_for(self):
        mixed = self.make()
        assert mixed.count_for(0) + mixed.count_for(1) == len(mixed.requests)

    def test_write_fraction(self):
        mixed = self.make()
        assert mixed.write_fraction() == pytest.approx(0.6, abs=0.01)

    def test_duration_positive(self):
        assert self.make().duration_us() > 0

    def test_empty_mix_stats(self):
        empty = MixedWorkload(specs=[spec()], requests=[])
        assert empty.proportions() == [0.0]
        assert empty.write_fraction() == 0.0
        assert empty.duration_us() == 0.0


class TestSynthesizeMix:
    def test_total_requests_honoured(self):
        specs = [spec("a", rate=1000), spec("b", rate=3000)]
        mixed = synthesize_mix(specs, total_requests=400, seed=1)
        assert len(mixed.requests) == 400

    def test_counts_follow_rates(self):
        specs = [spec("a", rate=1000), spec("b", rate=3000)]
        mixed = synthesize_mix(specs, total_requests=1000, seed=2)
        props = mixed.proportions()
        assert props[1] == pytest.approx(0.75, abs=0.08)

    def test_requires_specs(self):
        with pytest.raises(ValueError):
            synthesize_mix([], total_requests=10)

    def test_rejects_negative_total(self):
        with pytest.raises(ValueError):
            synthesize_mix([spec()], total_requests=-1)

    def test_deterministic_per_seed(self):
        specs = [spec("a"), spec("b")]
        a = synthesize_mix(specs, total_requests=100, seed=5)
        b = synthesize_mix(specs, total_requests=100, seed=5)
        assert [r.lpn for r in a.requests] == [r.lpn for r in b.requests]
