"""MSR Cambridge stand-ins vs Table II."""

import pytest

from repro.workloads import generate, msr

#: The exact published Table-II rows.
EXPECTED = {
    "mds_0": (0.88, 1_211_034),
    "mds_1": (0.07, 1_637_711),
    "rsrch_0": (0.91, 1_433_654),
    "prxy_0": (0.97, 12_518_968),
    "src_1": (0.05, 45_746_222),
    "web_2": (0.01, 5_175_367),
}


class TestTableII:
    def test_all_six_workloads_present(self):
        assert set(msr.available()) == set(EXPECTED)

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_published_statistics(self, name):
        ratio, count = EXPECTED[name]
        info = msr.TABLE_II[name]
        assert info.write_ratio == ratio
        assert info.request_count == count
        assert msr.request_count(name) == count

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            msr.spec("unknown_0")
        with pytest.raises(KeyError):
            msr.request_count("unknown_0")


class TestSpecs:
    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_generated_write_ratio_matches(self, name):
        s = msr.spec(name, rate_scale=100.0, footprint_pages=8192)
        reqs = generate(s, 4000, workload_id=0, seed=1)
        writes = sum(1 for r in reqs if not r.is_read)
        assert writes / len(reqs) == pytest.approx(EXPECTED[name][0], abs=0.02)

    def test_relative_rates_follow_request_counts(self):
        src = msr.spec("src_1")
        mds = msr.spec("mds_0")
        expected_ratio = EXPECTED["src_1"][1] / EXPECTED["mds_0"][1]
        assert src.rate_rps / mds.rate_rps == pytest.approx(expected_ratio)

    def test_rate_scale_is_linear(self):
        base = msr.spec("web_2", rate_scale=1.0)
        scaled = msr.spec("web_2", rate_scale=25.0)
        assert scaled.rate_rps == pytest.approx(25.0 * base.rate_rps)

    def test_dominance_classification(self):
        assert msr.spec("prxy_0").is_write_dominated
        assert msr.spec("rsrch_0").is_write_dominated
        assert not msr.spec("src_1").is_write_dominated
        assert not msr.spec("web_2").is_write_dominated

    def test_footprint_parameter_respected(self):
        s = msr.spec("mds_0", footprint_pages=512)
        assert s.footprint_pages == 512
        reqs = generate(s, 500, workload_id=0, seed=0)
        assert all(r.lpn + r.length <= 512 for r in reqs)
