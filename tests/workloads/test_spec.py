"""WorkloadSpec validation and derived properties."""

import pytest

from repro.workloads import WorkloadSpec


def spec(**kwargs):
    defaults = dict(name="t", write_ratio=0.5)
    defaults.update(kwargs)
    return WorkloadSpec(**defaults)


class TestDerived:
    def test_read_ratio_complements(self):
        assert spec(write_ratio=0.3).read_ratio == pytest.approx(0.7)

    def test_write_dominated_boundary(self):
        assert not spec(write_ratio=0.5).is_write_dominated
        assert spec(write_ratio=0.51).is_write_dominated

    def test_mean_interarrival(self):
        assert spec(rate_rps=1000).mean_interarrival_us == pytest.approx(1000.0)

    def test_scaled_rate(self):
        doubled = spec(rate_rps=100).scaled_rate(2.0)
        assert doubled.rate_rps == 200
        with pytest.raises(ValueError):
            spec().scaled_rate(0.0)

    def test_with_name(self):
        assert spec().with_name("other").name == "other"

    def test_describe(self):
        text = spec(write_ratio=0.9).describe()
        assert "write-dominated" in text


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(write_ratio=-0.1),
            dict(write_ratio=1.1),
            dict(rate_rps=0),
            dict(mean_request_pages=0.5),
            dict(max_request_pages=0),
            dict(footprint_pages=0),
            dict(sequential_fraction=1.5),
            dict(skew=-1.0),
            dict(burstiness=0.5),
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            spec(**kwargs)

    def test_frozen(self):
        s = spec()
        with pytest.raises(AttributeError):
            s.write_ratio = 0.9  # type: ignore[misc]
