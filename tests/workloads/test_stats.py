"""Trace analysis."""

import pytest

from repro.ssd import IORequest, OpType
from repro.workloads import WorkloadSpec, analyze, generate, per_workload


class TestAnalyze:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            analyze([])

    def test_counts_and_mix(self):
        reqs = [
            IORequest(arrival_us=0.0, workload_id=0, op=OpType.WRITE, lpn=0, length=2),
            IORequest(arrival_us=10.0, workload_id=0, op=OpType.READ, lpn=2, length=1),
            IORequest(arrival_us=20.0, workload_id=0, op=OpType.READ, lpn=3, length=1),
        ]
        stats = analyze(reqs)
        assert stats.requests == 3
        assert stats.pages == 4
        assert stats.write_ratio == pytest.approx(1 / 3)
        assert stats.duration_us == 20.0
        assert stats.rate_rps == pytest.approx(3 / 20e-6)

    def test_sequentiality_detection(self):
        reqs = [
            IORequest(arrival_us=float(i), workload_id=0, op=OpType.READ,
                      lpn=i * 2, length=2)
            for i in range(10)
        ]
        assert analyze(reqs).sequential_fraction == 1.0

    def test_recovers_generator_statistics(self):
        spec = WorkloadSpec(
            name="t",
            write_ratio=0.7,
            rate_rps=5000,
            mean_request_pages=2.0,
            sequential_fraction=0.4,
            footprint_pages=4096,
        )
        reqs = generate(spec, 4000, workload_id=0, seed=1)
        stats = analyze(reqs)
        assert stats.write_ratio == pytest.approx(0.7, abs=0.03)
        assert stats.rate_rps == pytest.approx(5000, rel=0.1)
        assert stats.mean_request_pages == pytest.approx(2.0, rel=0.15)
        assert stats.sequential_fraction == pytest.approx(0.4, abs=0.07)
        assert stats.footprint_pages <= 4096

    def test_burstiness_raises_cv(self):
        smooth = generate(
            WorkloadSpec(name="s", write_ratio=0.5, rate_rps=5000,
                         footprint_pages=1024, burstiness=1.0),
            3000, workload_id=0, seed=2,
        )
        bursty = generate(
            WorkloadSpec(name="b", write_ratio=0.5, rate_rps=5000,
                         footprint_pages=1024, burstiness=4.0),
            3000, workload_id=0, seed=2,
        )
        assert analyze(bursty).arrival_cv > analyze(smooth).arrival_cv

    def test_skew_raises_hot_decile_share(self):
        flat = generate(
            WorkloadSpec(name="f", write_ratio=0.5, rate_rps=5000,
                         footprint_pages=2048, skew=0.0,
                         sequential_fraction=0.0),
            4000, workload_id=0, seed=3,
        )
        hot = generate(
            WorkloadSpec(name="h", write_ratio=0.5, rate_rps=5000,
                         footprint_pages=2048, skew=2.0,
                         sequential_fraction=0.0),
            4000, workload_id=0, seed=3,
        )
        assert analyze(hot).top_decile_share > analyze(flat).top_decile_share

    def test_describe(self):
        reqs = [IORequest(arrival_us=0.0, workload_id=0, op=OpType.READ, lpn=0),
                IORequest(arrival_us=5.0, workload_id=0, op=OpType.READ, lpn=1)]
        assert "2 reqs" in analyze(reqs).describe()


class TestPerWorkload:
    def test_splits_by_tenant(self):
        reqs = [
            IORequest(arrival_us=0.0, workload_id=0, op=OpType.READ, lpn=0),
            IORequest(arrival_us=1.0, workload_id=1, op=OpType.WRITE, lpn=0),
            IORequest(arrival_us=2.0, workload_id=1, op=OpType.WRITE, lpn=1),
        ]
        stats = per_workload(reqs)
        assert set(stats) == {0, 1}
        assert stats[0].requests == 1
        assert stats[1].write_ratio == 1.0
