"""Synthetic trace generator: statistical and structural properties."""

import numpy as np
import pytest

from repro.workloads import WorkloadSpec, generate, generate_arrays


def spec(**kwargs):
    defaults = dict(name="t", write_ratio=0.5, rate_rps=10_000.0, footprint_pages=4096)
    defaults.update(kwargs)
    return WorkloadSpec(**defaults)


class TestStructure:
    def test_count_and_ids(self):
        reqs = generate(spec(), 100, workload_id=3, seed=0)
        assert len(reqs) == 100
        assert all(r.workload_id == 3 for r in reqs)

    def test_zero_count(self):
        assert generate(spec(), 0, workload_id=0, seed=0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            generate(spec(), -1, workload_id=0)

    def test_arrivals_increase(self):
        reqs = generate(spec(), 200, workload_id=0, seed=1)
        arrivals = [r.arrival_us for r in reqs]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] > 0

    def test_start_offset(self):
        reqs = generate(spec(), 10, workload_id=0, seed=1, start_us=5000.0)
        assert all(r.arrival_us > 5000.0 for r in reqs)

    def test_requests_stay_in_footprint(self):
        s = spec(footprint_pages=256, max_request_pages=8)
        for r in generate(s, 500, workload_id=0, seed=2):
            assert 0 <= r.lpn
            assert r.lpn + r.length <= 256

    def test_determinism_per_seed(self):
        a = generate(spec(), 50, workload_id=0, seed=7)
        b = generate(spec(), 50, workload_id=0, seed=7)
        assert [(r.arrival_us, r.lpn, int(r.op)) for r in a] == [
            (r.arrival_us, r.lpn, int(r.op)) for r in b
        ]

    def test_different_seeds_differ(self):
        a = generate(spec(), 50, workload_id=0, seed=1)
        b = generate(spec(), 50, workload_id=0, seed=2)
        assert [r.lpn for r in a] != [r.lpn for r in b]


class TestStatistics:
    def test_write_ratio_matches_spec(self):
        for ratio in (0.0, 0.25, 0.9, 1.0):
            reqs = generate(spec(write_ratio=ratio), 2000, workload_id=0, seed=3)
            writes = sum(1 for r in reqs if not r.is_read)
            assert writes / len(reqs) == pytest.approx(ratio, abs=0.04)

    def test_arrival_rate_matches_spec(self):
        s = spec(rate_rps=5000.0)
        reqs = generate(s, 5000, workload_id=0, seed=4)
        duration_s = reqs[-1].arrival_us / 1e6
        assert duration_s == pytest.approx(1.0, rel=0.1)

    def test_mean_size_tracks_spec(self):
        s = spec(mean_request_pages=3.0, max_request_pages=64)
        reqs = generate(s, 5000, workload_id=0, seed=5)
        mean = np.mean([r.length for r in reqs])
        assert mean == pytest.approx(3.0, rel=0.15)

    def test_unit_size_when_mean_is_one(self):
        reqs = generate(spec(mean_request_pages=1.0), 100, workload_id=0, seed=6)
        assert all(r.length == 1 for r in reqs)

    def test_max_size_respected(self):
        s = spec(mean_request_pages=8.0, max_request_pages=16)
        assert all(
            r.length <= 16 for r in generate(s, 2000, workload_id=0, seed=7)
        )

    def test_sequential_fraction_creates_runs(self):
        seq = generate(
            spec(sequential_fraction=0.95, mean_request_pages=1.0),
            1000,
            workload_id=0,
            seed=8,
        )
        rand = generate(
            spec(sequential_fraction=0.0, mean_request_pages=1.0),
            1000,
            workload_id=0,
            seed=8,
        )

        def continuation_rate(reqs):
            hits = sum(
                1
                for a, b in zip(reqs, reqs[1:])
                if b.lpn == a.lpn + a.length
            )
            return hits / (len(reqs) - 1)

        assert continuation_rate(seq) > 0.7
        assert continuation_rate(rand) < 0.2

    def test_skew_concentrates_accesses(self):
        flat = generate(spec(skew=0.0), 4000, workload_id=0, seed=9)
        hot = generate(spec(skew=2.5, sequential_fraction=0.0), 4000, workload_id=0, seed=9)

        def top_decile_share(reqs, footprint=4096):
            counts = np.bincount([r.lpn for r in reqs], minlength=footprint)
            counts.sort()
            return counts[-footprint // 10 :].sum() / counts.sum()

        assert top_decile_share(hot) > top_decile_share(flat)

    def test_burstiness_increases_gap_variance(self):
        smooth = generate_arrays(spec(burstiness=1.0), 4000, workload_id=0, seed=10)
        bursty = generate_arrays(spec(burstiness=4.0), 4000, workload_id=0, seed=10)
        gaps_smooth = np.diff(smooth["arrival_us"])
        gaps_bursty = np.diff(bursty["arrival_us"])
        cv_smooth = gaps_smooth.std() / gaps_smooth.mean()
        cv_bursty = gaps_bursty.std() / gaps_bursty.mean()
        assert cv_bursty > cv_smooth


class TestArraysAPI:
    def test_columns_align(self):
        cols = generate_arrays(spec(), 64, workload_id=0, seed=0)
        n = {len(v) for v in cols.values()}
        assert n == {64}

    def test_empty(self):
        cols = generate_arrays(spec(), 0, workload_id=0, seed=0)
        assert all(len(v) == 0 for v in cols.values())
