"""Trace file round trips and error handling."""

from hypothesis import given
from hypothesis import strategies as st
import pytest

from repro.ssd import IORequest, OpType
from repro.workloads import traces

request_strategy = st.builds(
    IORequest,
    arrival_us=st.floats(0, 1e8, allow_nan=False).map(lambda v: round(v, 3)),
    workload_id=st.integers(0, 7),
    op=st.sampled_from([OpType.READ, OpType.WRITE]),
    lpn=st.integers(0, 2**40),
    length=st.integers(1, 64),
)


class TestRoundTrip:
    @given(st.lists(request_strategy, max_size=30))
    def test_string_roundtrip(self, reqs):
        parsed = traces.loads(traces.dumps(reqs))
        assert len(parsed) == len(reqs)
        for a, b in zip(reqs, parsed):
            assert a.arrival_us == pytest.approx(b.arrival_us, abs=1e-3)
            assert (a.workload_id, a.op, a.lpn, a.length) == (
                b.workload_id,
                b.op,
                b.lpn,
                b.length,
            )

    def test_file_roundtrip(self, tmp_path):
        reqs = [
            IORequest(arrival_us=1.5, workload_id=0, op=OpType.READ, lpn=10, length=2),
            IORequest(arrival_us=3.25, workload_id=1, op=OpType.WRITE, lpn=77),
        ]
        path = tmp_path / "trace.csv"
        traces.dump(reqs, path)
        loaded = traces.load(path)
        assert len(loaded) == 2
        assert loaded[1].op is OpType.WRITE
        assert loaded[1].lpn == 77

    def test_higher_precision(self):
        reqs = [IORequest(arrival_us=0.123456, workload_id=0, op=OpType.READ, lpn=0)]
        text = traces.dumps(reqs, precision=6)
        assert "0.123456" in text


class TestParsing:
    def test_skips_comments_and_blank_lines(self):
        text = "# comment\n\n0.0,0,R,1,1\n# another\n1.0,0,W,2,1\n"
        assert len(traces.loads(text)) == 2

    def test_skips_column_header(self):
        text = "arrival_us,workload_id,op,lpn,length\n0.0,0,R,1,1\n"
        assert len(traces.loads(text)) == 1

    def test_strict_rejects_wrong_field_count(self):
        with pytest.raises(ValueError, match="line 1"):
            traces.loads("0.0,0,R,1\n", strict=True)

    def test_strict_rejects_bad_op(self):
        with pytest.raises(ValueError, match="line 1"):
            traces.loads("0.0,0,X,1,1\n", strict=True)

    def test_strict_rejects_bad_numbers(self):
        with pytest.raises(ValueError):
            traces.loads("abc,0,R,1,1\n", strict=True)

    def test_strict_error_reports_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            traces.loads("0.0,0,R,1,1\n0.0,0,R,1\n", strict=True)


class TestLenientParsing:
    DIRTY = "0.0,0,R,1,1\nabc,0,R,1,1\n1.0,0,W,2,1\n2.0,0,R,3\n3.0,0,R,4,1\n"

    def test_skips_malformed_lines(self):
        with pytest.warns(traces.MalformedTraceWarning):
            parsed = traces.loads(self.DIRTY)
        assert [r.lpn for r in parsed] == [1, 2, 4]

    def test_warning_counts_and_names_first_error(self):
        with pytest.warns(traces.MalformedTraceWarning, match=r"skipped 2 .*line 2"):
            traces.loads(self.DIRTY)

    def test_clean_trace_warns_nothing(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            parsed = traces.loads("0.0,0,R,1,1\n1.0,0,W,2,1\n")
        assert len(parsed) == 2

    def test_file_load_is_lenient(self, tmp_path):
        path = tmp_path / "dirty.csv"
        path.write_text(self.DIRTY, encoding="utf-8")
        with pytest.warns(traces.MalformedTraceWarning):
            assert len(traces.load(path)) == 3
        with pytest.raises(ValueError):
            traces.load(path, strict=True)
