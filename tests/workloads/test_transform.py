"""Trace transformations."""

from hypothesis import given
from hypothesis import strategies as st
import pytest

from repro.ssd import IORequest, OpType
from repro.workloads import (
    analyze,
    clone,
    remap_workloads,
    rescale_time,
    rescale_to_rate,
    shift_time,
    slice_window,
)


def trace(n=10, gap=100.0):
    return [
        IORequest(arrival_us=i * gap, workload_id=i % 2, op=OpType.READ, lpn=i)
        for i in range(n)
    ]


class TestClone:
    def test_fields_preserved_objects_fresh(self):
        original = trace(5)
        original[0].complete_us = 123.0
        copies = clone(original)
        assert copies[0] is not original[0]
        assert copies[0].complete_us == -1.0  # completion state reset
        assert copies[0].arrival_us == original[0].arrival_us
        assert copies[0].lpn == original[0].lpn


class TestRescale:
    def test_factor_applies_to_arrivals_only(self):
        out = rescale_time(trace(5), 0.5)
        assert [r.arrival_us for r in out] == [0.0, 50.0, 100.0, 150.0, 200.0]
        assert [r.lpn for r in out] == [0, 1, 2, 3, 4]

    def test_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            rescale_time(trace(2), 0.0)

    def test_rescale_to_rate_hits_target(self):
        original = trace(101, gap=1000.0)  # 1k req/s
        out = rescale_to_rate(original, 5000.0)
        assert analyze(out).rate_rps == pytest.approx(5000.0, rel=0.02)

    def test_rescale_to_rate_short_traces_pass_through(self):
        single = trace(1)
        assert len(rescale_to_rate(single, 100.0)) == 1

    @given(factor=st.floats(0.01, 100.0))
    def test_rescaling_preserves_order(self, factor):
        out = rescale_time(trace(20), factor)
        arrivals = [r.arrival_us for r in out]
        assert arrivals == sorted(arrivals)


class TestSliceWindow:
    def test_half_open_interval(self):
        out = slice_window(trace(10), 200.0, 500.0, rebase=False)
        assert [r.arrival_us for r in out] == [200.0, 300.0, 400.0]

    def test_rebase_shifts_to_zero(self):
        out = slice_window(trace(10), 200.0, 500.0)
        assert out[0].arrival_us == 0.0

    def test_empty_window(self):
        assert slice_window(trace(10), 5000.0, 6000.0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            slice_window(trace(3), 100.0, 100.0)


class TestShift:
    def test_offset_applied(self):
        out = shift_time(trace(3), 1000.0)
        assert [r.arrival_us for r in out] == [1000.0, 1100.0, 1200.0]

    def test_negative_result_rejected(self):
        with pytest.raises(ValueError):
            shift_time(trace(3), -50.0)


class TestRemap:
    def test_renumbers(self):
        out = remap_workloads(trace(4), {0: 7, 1: 3})
        assert [r.workload_id for r in out] == [7, 3, 7, 3]

    def test_missing_id_rejected(self):
        with pytest.raises(KeyError):
            remap_workloads(trace(4), {0: 7})


class TestComposition:
    def test_simulation_equivalence_after_clone(self, small_config):
        """Cloned traces drive the simulator identically."""
        from repro.ssd import simulate

        reqs = trace(50, gap=20.0)
        sets = {0: list(range(8)), 1: list(range(8))}
        a = simulate(clone(reqs), small_config, sets)
        b = simulate(clone(reqs), small_config, sets)
        assert a.total_latency_us == b.total_latency_us

    def test_slice_then_shift_concatenates_phases(self):
        first = slice_window(trace(10), 0.0, 500.0)
        second = shift_time(slice_window(trace(10), 0.0, 500.0), 600.0)
        combined = first + second
        arrivals = [r.arrival_us for r in combined]
        assert arrivals == sorted(arrivals)
        assert len(combined) == 10
